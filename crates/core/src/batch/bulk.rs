//! Bulk construction from sorted input.
//!
//! The model's algorithm-design section (§2.1) stipulates that "the input
//! starts evenly divided among the PIM modules"; building the initial
//! structure therefore should not pay per-key search costs. [`bulk_load`]
//! constructs the skip list from a sorted key sequence with **no searches
//! at all**: towers are allocated exactly as in batched Upsert, but the
//! horizontal pointers are degenerate Algorithm-1 segments — at every
//! level the new nodes form one run whose predecessor is the −∞ sentinel
//! and whose successor is null — so the CPU can emit every link directly.
//!
//! [`bulk_load`]: crate::PimSkipList::bulk_load

use pim_runtime::Handle;

use crate::config::{Key, Value, POS_INF};
use crate::error::PimResult;
use crate::list::PimSkipList;
use crate::tasks::Task;

impl PimSkipList {
    /// Build the whole structure from a strictly ascending pair sequence.
    /// Panics if the structure is non-empty or the input unsorted.
    ///
    /// Compared to [`PimSkipList::load`] (repeated batched upserts), this
    /// skips the batched-Predecessor stage entirely: `O(1)` messages per
    /// node instead of `O(log P)`, and `O(1)` rounds per level instead of
    /// `O(log P)` per batch.
    pub fn bulk_load(&mut self, pairs: &[(Key, Value)]) {
        assert!(self.is_empty(), "bulk_load requires an empty structure");
        assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "bulk_load requires strictly ascending keys"
        );
        self.try_bulk_load(pairs)
            .unwrap_or_else(|e| panic!("bulk_load: {e}"))
    }

    /// One fault-observable attempt of [`PimSkipList::bulk_load`]. Also the
    /// workhorse of crash recovery: `restore_all` resets the machine and
    /// replays the journal's contents through this path.
    pub(crate) fn bulk_load_attempt(&mut self, pairs: &[(Key, Value)]) -> PimResult<()> {
        debug_assert!(self.is_empty(), "bulk_load_attempt on non-empty structure");
        if pairs.is_empty() {
            return Ok(());
        }
        self.spanned("bulk_load", |s| {
            let staged = pairs.len() as u64 * 2;
            s.sys.shared_mem().alloc(staged);
            let out = s.bulk_load_attempt_inner(pairs);
            s.sys.sample_shared_mem();
            s.sys.shared_mem().free(staged);
            out
        })
    }

    fn bulk_load_attempt_inner(&mut self, pairs: &[(Key, Value)]) -> PimResult<()> {
        // Structural writes throughout: invalidate push-pull snapshots.
        self.bump_write_epoch();
        // Heights + allocation + vertical wiring (shared with Upsert).
        let tops: Vec<u8> = (0..pairs.len())
            .map(|_| self.rng.skiplist_height(self.cfg.max_level - 1))
            .collect();
        let mut tower = crate::batch::upsert::Towers::default();
        self.allocate_towers(pairs, &tops, &mut tower)?;

        // Horizontal links, level by level: the nodes at each level in key
        // order form a single chain headed by the −∞ sentinel of that
        // level (replicated slot = level by construction).
        let max_top = tops.iter().copied().max().unwrap_or(0);
        self.spanned("link", |s| -> PimResult<()> {
            for level in 0..=max_top {
                let at_level: Vec<usize> = (0..pairs.len()).filter(|&j| tops[j] >= level).collect();
                if at_level.is_empty() {
                    continue;
                }
                let inf = Handle::replicated(u32::from(level));
                // −∞ → first.
                let first = tower.get(at_level[0])[level as usize];
                s.send_write(
                    inf,
                    Task::WriteRight {
                        node: inf,
                        to: first,
                        to_key: pairs[at_level[0]].0,
                    },
                );
                s.send_write(
                    first,
                    Task::WriteLeft {
                        node: first,
                        to: inf,
                    },
                );
                // node_j → node_{j+1}.
                for w in at_level.windows(2) {
                    let (a, b) = (w[0], w[1]);
                    let (ha, hb) = (tower.get(a)[level as usize], tower.get(b)[level as usize]);
                    s.send_write(
                        ha,
                        Task::WriteRight {
                            node: ha,
                            to: hb,
                            to_key: pairs[b].0,
                        },
                    );
                    s.send_write(hb, Task::WriteLeft { node: hb, to: ha });
                }
                // last → null.
                let last = tower.get(*at_level.last().expect("non-empty"))[level as usize];
                s.send_write(
                    last,
                    Task::WriteRight {
                        node: last,
                        to: Handle::NULL,
                        to_key: POS_INF,
                    },
                );
                s.sys.metrics_mut().charge_cpu(at_level.len() as u64, 1);
            }
            s.quiesce_writes("bulk_load")
        })?;

        // next_leaf shortcuts of the new upper leaves.
        self.fix_new_next_leaves(&tower, &tops)?;

        // Commit: every pair is now part of the logical contents.
        for (j, &(key, value)) in pairs.iter().enumerate() {
            self.journal.record_insert(key, value, tower.get(j));
        }
        self.len = pairs.len() as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::config::Config;
    use crate::list::PimSkipList;

    #[test]
    fn bulk_load_builds_valid_structure() {
        let mut list = PimSkipList::new(Config::new(8, 1 << 12, 5));
        let pairs: Vec<(i64, u64)> = (0..2000).map(|i| (i * 3, i as u64)).collect();
        list.bulk_load(&pairs);
        assert_eq!(list.len(), 2000);
        list.validate().unwrap();
        assert_eq!(list.collect_items(), pairs);
    }

    #[test]
    fn bulk_load_then_mutate() {
        let mut list = PimSkipList::new(Config::new(4, 1 << 10, 6));
        let pairs: Vec<(i64, u64)> = (0..500).map(|i| (i * 2, i as u64)).collect();
        list.bulk_load(&pairs);
        // Interleave new odd keys, delete some evens.
        let odds: Vec<(i64, u64)> = (0..100).map(|i| (i * 2 + 1, 7)).collect();
        list.batch_upsert(&odds);
        let res = list.batch_delete(&[0, 2, 4]);
        assert_eq!(res, vec![true, true, true]);
        list.validate().unwrap();
        assert_eq!(list.len(), 500 + 100 - 3);
        assert_eq!(list.batch_get(&[1, 3, 0]), vec![Some(7), Some(7), None]);
    }

    #[test]
    fn bulk_load_is_cheaper_than_upsert_loading() {
        let pairs: Vec<(i64, u64)> = (0..4000).map(|i| (i, i as u64)).collect();
        let mut bulk = PimSkipList::new(Config::new(16, 1 << 12, 7));
        bulk.bulk_load(&pairs);
        let bulk_io = bulk.metrics().io_time;

        let mut incr = PimSkipList::new(Config::new(16, 1 << 12, 7));
        incr.load(&pairs);
        let incr_io = incr.metrics().io_time;

        assert_eq!(bulk.collect_items(), incr.collect_items());
        assert!(
            (bulk_io as f64) < incr_io as f64 * 0.8,
            "bulk load should save IO: {bulk_io} vs {incr_io}"
        );
    }

    #[test]
    fn bulk_load_empty_is_noop() {
        let mut list = PimSkipList::new(Config::new(4, 64, 8));
        list.bulk_load(&[]);
        assert!(list.is_empty());
        list.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "requires an empty structure")]
    fn bulk_load_rejects_nonempty() {
        let mut list = PimSkipList::new(Config::new(4, 64, 9));
        list.upsert(1, 1);
        list.bulk_load(&[(2, 2)]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn bulk_load_rejects_unsorted() {
        let mut list = PimSkipList::new(Config::new(4, 64, 10));
        list.bulk_load(&[(2, 2), (1, 1)]);
    }

    #[test]
    fn bulk_load_single_pair() {
        let mut list = PimSkipList::new(Config::new(4, 64, 11));
        list.bulk_load(&[(42, 420)]);
        assert_eq!(list.get(42), Some(420));
        list.validate().unwrap();
    }
}
