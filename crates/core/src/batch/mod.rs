//! Batch-parallel point operations (§4).

pub mod bulk;
pub mod delete;
pub mod get;
pub mod search;
pub mod upsert;

pub use upsert::UpsertOutcome;
