//! Batched Predecessor/Successor — the pivot divide-and-conquer of §4.2.
//!
//! A naïve batch of searches serialises under the same-successor adversary:
//! all `P log² P` search paths converge on one leaf and its ancestors
//! become contention points. The paper's fix:
//!
//! * **Stage 1** — sort the batch, pick every `log P`-th key as a *pivot*
//!   (plus both extremes), and resolve the pivots by divide and conquer:
//!   phase 0 runs the two extremes from the root recording their lower-part
//!   paths; each later phase runs the median of every open segment,
//!   starting from the **LCA** of the segment endpoints' recorded paths
//!   (start-node hints). Lemma 4.2: no node is accessed more than 3 times
//!   per phase.
//! * **Stage 2** — run all remaining queries with hints from their
//!   bracketing pivots; contention is `O(log P)` per node (segment width),
//!   PIM-balanced by Lemma 2.2.
//!
//! For insert support ([`SearchMode::PredLevels`]) a hinted search only
//! descends below its hint; the per-level predecessors *above* the LCA are
//! stitched from the segment's left endpoint — valid because search paths
//! that share an LCA coincide above it (the search-path tree of §3.2).

use std::collections::HashMap;

use pim_primitives::accounting::{log2c, CpuCost};
use pim_primitives::paths::Hint;
use pim_primitives::sort::{par_sort, sort_cost};
use pim_runtime::Handle;

use crate::config::{Key, NEG_INF};
use crate::error::{PimError, PimResult};
use crate::list::PimSkipList;
use crate::tasks::{Reply, SearchMode, Task};

/// One deduplicated search request (`op` unique, keys ascending).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SearchRequest {
    /// Caller-chosen unique id.
    pub op: u32,
    /// Search key.
    pub key: Key,
    /// Report per-level predecessors for levels `1..=top` (0 = point mode).
    pub top: u8,
}

/// Terminal (level-0) search report.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DoneRec {
    pub pred: Handle,
    pub pred_key: Key,
    pub succ: Handle,
    pub succ_key: Key,
}

/// Per-level predecessor report (insert support); the level is the map key
/// in [`SearchResults::preds`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct PredRec {
    pub pred: Handle,
    pub succ: Handle,
    pub succ_key: Key,
}

/// Collected results of a pivoted batch search.
#[derive(Default)]
pub(crate) struct SearchResults {
    pub done: HashMap<u32, DoneRec>,
    /// Per-`(op, level)` predecessor reports — one flat map instead of one
    /// heap `Vec` per op, so a search allocates O(1) containers however
    /// many towers it serves.
    pub preds: HashMap<(u32, u8), PredRec>,
    /// The start hint each op was executed with (reused by the
    /// tree-structure range operations as their descent start, §5.2).
    pub hints: HashMap<u32, Hint>,
}

impl SearchResults {
    /// The predecessor record for `op` at `level` (level 0 via `done`).
    pub fn pred_at(&self, op: u32, level: u8) -> Option<(Handle, Handle, Key)> {
        if level == 0 {
            return self.done.get(&op).map(|d| (d.pred, d.succ, d.succ_key));
        }
        self.preds
            .get(&(op, level))
            .map(|p| (p.pred, p.succ, p.succ_key))
    }
}

/// Compute the start hint and the shared path-prefix *length* (up to and
/// including the LCA) for a key bracketed by the owners of `a` and `b`.
/// Allocation-free: the prefix itself is materialised only for pivots that
/// record paths ([`PimSkipList::run_wave`] slices it out of the source
/// op's recorded path).
fn hint_and_prefix(a: &[Handle], b: &[Handle]) -> (Hint, usize, CpuCost) {
    let common = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
    let cost = CpuCost::new(
        (common as u64).max(1),
        log2c(a.len().max(b.len()).max(1) as u64),
    );
    if common == 0 {
        (Hint::Root, 0, cost)
    } else if common == a.len() && common == b.len() {
        (Hint::SharedLeaf(a[common - 1]), common, cost)
    } else {
        (Hint::Start(a[common - 1]), common, cost)
    }
}

/// A wave item: request index, its start hint, and the length of the path
/// prefix (shared with `stitch_from`'s recorded path) to prepend when
/// reconstructing its full lower-part path.
///
/// `pub(crate)` so [`crate::scratch::Scratch`] can pool wave-item buffers
/// across batches; the fields stay module-private.
#[derive(Debug)]
pub(crate) struct WaveItem {
    idx: usize,
    hint: Hint,
    prefix_len: usize,
    /// Stitch per-level predecessors above the hint from this op; also the
    /// owner of the shared path prefix.
    stitch_from: Option<u32>,
}

impl PimSkipList {
    /// Run the full pivoted batch search. `reqs` must be ascending in key
    /// and unique; `pivot_top` forces pivots to record predecessors up to
    /// this level so later stitching is always possible.
    ///
    /// Fails with [`PimError::Incomplete`] when injected faults lose search
    /// traffic (missing terminal records, missing pivot paths, `Faulted`
    /// replies); on a fault-free machine the result is always `Ok`.
    pub(crate) fn pivoted_search(&mut self, reqs: &[SearchRequest]) -> PimResult<SearchResults> {
        self.spanned("search", |s| {
            let mut staged_words = 0u64;
            let out = s.pivoted_search_inner(reqs, &mut staged_words);
            if staged_words > 0 {
                s.sys.sample_shared_mem();
                s.sys.shared_mem().free(staged_words);
            }
            out
        })
    }

    /// Leasing shim around [`PimSkipList::pivoted_search_core`]: the
    /// CPU-side staging vectors (pivot indices, wave items, segment lists)
    /// come from [`crate::scratch::Scratch`] and go back whether the core
    /// returns `Ok` or a fault-path `Err`, so a service front-end
    /// searching continuously allocates none of them in steady state.
    fn pivoted_search_inner(
        &mut self,
        reqs: &[SearchRequest],
        staged_words: &mut u64,
    ) -> PimResult<SearchResults> {
        let mut pivots = self.scratch.take_pivots();
        let mut items = self.scratch.take_wave_items();
        let mut segments = self.scratch.take_segments();
        let mut next_segments = self.scratch.take_segments2();
        let out = self.pivoted_search_core(
            reqs,
            staged_words,
            &mut pivots,
            &mut items,
            &mut segments,
            &mut next_segments,
        );
        self.scratch.give_segments2(next_segments);
        self.scratch.give_segments(segments);
        self.scratch.give_wave_items(items);
        self.scratch.give_pivots(pivots);
        out
    }

    fn pivoted_search_core(
        &mut self,
        reqs: &[SearchRequest],
        staged_words: &mut u64,
        pivots: &mut Vec<usize>,
        items: &mut Vec<WaveItem>,
        segments: &mut Vec<(usize, usize)>,
        next_segments: &mut Vec<(usize, usize)>,
    ) -> PimResult<SearchResults> {
        let mut results = SearchResults::default();
        let b = reqs.len();
        self.last_phase_contention.clear();
        if b == 0 {
            return Ok(results);
        }
        debug_assert!(reqs.windows(2).all(|w| w[0].key < w[1].key));
        let max_top = reqs.iter().map(|r| r.top).max().unwrap_or(0);

        *staged_words = 2 * b as u64;
        self.sys.shared_mem().alloc(*staged_words);

        // Push-pull pre-pass: refresh the hot-node cache (one `is_some`
        // branch when the feature is off — the dark-mode contract).
        if self.hot.is_some() {
            self.hot_refresh()?;
        }

        // Pivot selection: every log P-th element plus the extremes.
        let step = self.cfg.log_p().max(1) as usize;
        pivots.extend((0..b).step_by(step));
        if *pivots.last().expect("non-empty") != b - 1 {
            pivots.push(b - 1);
        }
        let m = pivots.len();

        let mut paths: HashMap<u32, Vec<Handle>> = HashMap::new();

        // ---- Stage 1, phase 0: the extremes, from the root. ----
        items.push(WaveItem {
            idx: pivots[0],
            hint: Hint::Root,
            prefix_len: 0,
            stitch_from: None,
        });
        if m > 1 {
            items.push(WaveItem {
                idx: pivots[m - 1],
                hint: Hint::Root,
                prefix_len: 0,
                stitch_from: None,
            });
        }
        // ---- Stage 1: extremes from the root, then medians of open
        // segments (pivot divide and conquer). ----
        self.spanned("search/stage1", |s| -> PimResult<()> {
            *staged_words +=
                s.run_wave(items, reqs, Some(max_top), true, &mut results, &mut paths)?;
            s.record_phase_contention();

            if m > 1 {
                segments.push((0, m - 1));
            }
            while segments.iter().any(|&(l, r)| r - l > 1) {
                items.clear();
                next_segments.clear();
                let mut hint_cost = CpuCost::ZERO;
                for &(l, r) in segments.iter() {
                    if r - l <= 1 {
                        continue;
                    }
                    let med = (l + r) / 2;
                    let (op_l, op_r) = (reqs[pivots[l]].op, reqs[pivots[r]].op);
                    let (path_l, path_r) = (
                        paths.get(&op_l).ok_or(PimError::Incomplete {
                            op: "search",
                            missing: 1,
                        })?,
                        paths.get(&op_r).ok_or(PimError::Incomplete {
                            op: "search",
                            missing: 1,
                        })?,
                    );
                    let (hint, prefix_len, cost) = hint_and_prefix(path_l, path_r);
                    hint_cost = hint_cost.beside(cost);
                    items.push(WaveItem {
                        idx: pivots[med],
                        hint,
                        prefix_len,
                        stitch_from: Some(op_l),
                    });
                    next_segments.push((l, med));
                    next_segments.push((med, r));
                }
                hint_cost.charge(s.sys.metrics_mut());
                *staged_words +=
                    s.run_wave(items, reqs, Some(max_top), true, &mut results, &mut paths)?;
                s.record_phase_contention();
                std::mem::swap(&mut *segments, &mut *next_segments);
            }
            Ok(())
        })?;

        // ---- Stage 2: everything else, hinted by bracketing pivots. ----
        self.spanned("search/stage2", |s| -> PimResult<()> {
            items.clear();
            let mut hint_cost = CpuCost::ZERO;
            for i in 0..b {
                // `pivots` is ascending by construction.
                if pivots.binary_search(&i).is_ok() {
                    continue;
                }
                let pos = pivots.partition_point(|&p| p < i);
                debug_assert!(pos > 0 && pos < pivots.len());
                let (op_l, op_r) = (reqs[pivots[pos - 1]].op, reqs[pivots[pos]].op);
                let (path_l, path_r) = (
                    paths.get(&op_l).ok_or(PimError::Incomplete {
                        op: "search",
                        missing: 1,
                    })?,
                    paths.get(&op_r).ok_or(PimError::Incomplete {
                        op: "search",
                        missing: 1,
                    })?,
                );
                let (hint, prefix_len, cost) = hint_and_prefix(path_l, path_r);
                hint_cost = hint_cost.beside(cost);
                items.push(WaveItem {
                    idx: i,
                    hint,
                    prefix_len,
                    stitch_from: Some(op_l),
                });
            }
            hint_cost.charge(s.sys.metrics_mut());
            *staged_words += s.run_wave(items, reqs, None, false, &mut results, &mut paths)?;
            s.record_phase_contention();
            Ok(())
        })?;

        // Completeness: every request must have reached level 0.
        let missing = reqs
            .iter()
            .filter(|r| !results.done.contains_key(&r.op))
            .count();
        if missing > 0 {
            return Err(PimError::incomplete("search", missing));
        }
        Ok(results)
    }

    /// Issue one wave of searches, absorb replies, reconstruct paths, and
    /// stitch missing per-level predecessors. Returns the staged words
    /// added (path storage).
    fn run_wave(
        &mut self,
        items: &[WaveItem],
        reqs: &[SearchRequest],
        forced_top: Option<u8>,
        record: bool,
        results: &mut SearchResults,
        paths: &mut HashMap<u32, Vec<Handle>>,
    ) -> PimResult<u64> {
        let mut copies = self.scratch.take_copies();
        // The hot cache is taken off the structure for the duration of the
        // wave (the core needs `&mut self` for sends while walking it).
        let mut hot = self.hot.take();
        let out = self.run_wave_core(
            items,
            reqs,
            forced_top,
            record,
            results,
            paths,
            &mut copies,
            hot.as_deref_mut(),
        );
        self.hot = hot;
        self.scratch.give_copies(copies);
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn run_wave_core(
        &mut self,
        items: &[WaveItem],
        reqs: &[SearchRequest],
        forced_top: Option<u8>,
        record: bool,
        results: &mut SearchResults,
        paths: &mut HashMap<u32, Vec<Handle>>,
        copies: &mut Vec<(u32, u32)>, // (dst op, src op)
        mut hot: Option<&mut crate::hotcache::HotNodeCache>,
    ) -> PimResult<u64> {
        // With push-pull on, every search records its path (including the
        // replicated upper part, via `record_upper`) so the replies warm
        // the access counts (io only — rounds are unchanged).
        let record_upper = hot.is_some();
        let record_path = record || record_upper;
        let mut path_words = 0u64;
        let mut walk_work = 0u64;
        let mut walk_depth = 0u64;
        for item in items {
            let req = reqs[item.idx];
            let top = forced_top.unwrap_or(req.top).min(self.cfg.max_level);
            let mode = mode_for(top);
            results.hints.insert(req.op, item.hint);
            // `drawn` is the module a replicated start would be shipped to.
            // The draw is burned even when the walk resolves the item, so
            // the rng stream — and hence tower heights and contents — is
            // identical to push-pull off.
            let (start, drawn) = match item.hint {
                Hint::SharedLeaf(_) => {
                    copies.push((req.op, item.stitch_from.expect("shared leaf has a source")));
                    continue;
                }
                Hint::Root => {
                    let target = self.random_module();
                    if record {
                        paths.insert(req.op, Vec::new());
                    }
                    (self.root(), target)
                }
                Hint::Start(h) => {
                    debug_assert!(!h.is_replicated(), "recorded paths hold lower-part nodes");
                    if record {
                        // Materialise the shared prefix from the source
                        // op's recorded path (one allocation, pivots only).
                        let src = item.stitch_from.expect("hinted search has a source");
                        let prefix = paths.get(&src).ok_or(PimError::Incomplete {
                            op: "search",
                            missing: 1,
                        })?[..item.prefix_len]
                            .to_vec();
                        paths.insert(req.op, prefix);
                    }
                    (h, h.module())
                }
            };
            let mut at = start;
            if let Some(hot) = hot.as_deref_mut() {
                // Pull pre-pass: resolve the cached prefix of the descent
                // on the CPU, mirroring the module walk step for step
                // (snapshots are epoch-coherent, so results and recorded
                // paths are exactly what the module would have produced).
                // A fully resolved item sends nothing — a wave of them
                // quiesces in zero rounds.
                let mut steps = 0u64;
                let mut resolved = false;
                loop {
                    let Some(rec) = hot.records.get(&at.to_bits()) else {
                        // Miss: count it so the next refresh pulls this
                        // node, then ship the residual.
                        hot.note(at);
                        break;
                    };
                    let rec = *rec;
                    steps += 1;
                    hot.note(at);
                    if record && !at.is_replicated() {
                        paths.entry(req.op).or_default().push(at);
                        path_words += 1;
                    }
                    if rec.right_key < req.key {
                        at = rec.right;
                        continue;
                    }
                    if let SearchMode::PredLevels { top } = mode {
                        if rec.level >= 1 && rec.level <= top {
                            results.preds.insert(
                                (req.op, rec.level),
                                PredRec {
                                    pred: at,
                                    succ: rec.right,
                                    succ_key: rec.right_key,
                                },
                            );
                        }
                    }
                    if rec.level == 0 {
                        results.done.insert(
                            req.op,
                            DoneRec {
                                pred: at,
                                pred_key: rec.key,
                                succ: rec.right,
                                succ_key: rec.right_key,
                            },
                        );
                        resolved = true;
                        break;
                    }
                    debug_assert!(rec.down.is_some(), "non-leaf without down pointer");
                    at = rec.down;
                }
                walk_work += steps;
                walk_depth = walk_depth.max(steps);
                if resolved {
                    continue;
                }
            }
            let target = if at.is_replicated() {
                drawn
            } else {
                at.module()
            };
            self.sys.send(
                target,
                Task::Search {
                    op: req.op,
                    key: req.key,
                    at,
                    mode,
                    record_path,
                    record_upper,
                },
            );
        }
        if walk_work > 0 {
            // The pull pre-pass is CPU-side: §2.1 work/depth, not PIM time.
            CpuCost::new(walk_work, walk_depth).charge(self.sys.metrics_mut());
        }

        let replies = self.sys.run_to_quiescence();
        let mut faulted = 0usize;
        for r in replies {
            match r {
                Reply::SearchDone {
                    op,
                    pred,
                    pred_key,
                    succ,
                    succ_key,
                } => {
                    results.done.insert(
                        op,
                        DoneRec {
                            pred,
                            pred_key,
                            succ,
                            succ_key,
                        },
                    );
                }
                Reply::PredAt {
                    op,
                    level,
                    pred,
                    succ,
                    succ_key,
                } => {
                    results.preds.insert(
                        (op, level),
                        PredRec {
                            pred,
                            succ,
                            succ_key,
                        },
                    );
                }
                Reply::PathNode { op, node } => {
                    if let Some(hot) = hot.as_deref_mut() {
                        hot.note(node);
                    }
                    // Replicated nodes warm the cache but are never part of
                    // a recorded path (hints must stay lower-part).
                    if record && !node.is_replicated() {
                        paths.entry(op).or_default().push(node);
                        path_words += 1;
                    }
                }
                Reply::Faulted { .. } => faulted += 1,
                other => return Err(PimError::protocol("search", other)),
            }
        }
        if faulted > 0 {
            return Err(PimError::incomplete("search", faulted));
        }

        // Resolve SharedLeaf copies (results and paths identical to src).
        let max_level = self.cfg.max_level;
        for &(dst, src) in copies.iter() {
            let d = *results.done.get(&src).ok_or(PimError::Incomplete {
                op: "search",
                missing: 1,
            })?;
            results.done.insert(dst, d);
            for level in 1..=max_level {
                if let Some(&p) = results.preds.get(&(src, level)) {
                    results.preds.insert((dst, level), p);
                }
            }
            if record {
                if let Some(p) = paths.get(&src).cloned() {
                    paths.insert(dst, p);
                }
            }
        }

        // Stitch per-level predecessors above each hint from the source op
        // (paths coincide above the LCA).
        for item in items {
            let Some(src) = item.stitch_from else {
                continue;
            };
            let req = reqs[item.idx];
            let top = forced_top.unwrap_or(req.top).min(max_level);
            for level in 1..=top {
                if results.preds.contains_key(&(req.op, level)) {
                    continue;
                }
                if let Some(&p) = results.preds.get(&(src, level)) {
                    results.preds.insert((req.op, level), p);
                }
            }
        }

        self.sys.shared_mem().alloc(path_words);
        Ok(path_words)
    }

    fn record_phase_contention(&mut self) {
        if self.cfg.track_contention {
            let max = self.take_max_contention();
            self.last_phase_contention.push(max);
        }
    }

    /// Batched Successor: for each key, the smallest resident key `≥` it
    /// (with its handle), or `None` past the end. Duplicates are deduped
    /// before searching (the adversary countermeasure of §4.1 applied to
    /// queries), results fanned back out.
    pub fn batch_successor(&mut self, keys: &[Key]) -> Vec<Option<(Key, Handle)>> {
        self.try_batch_successor(keys)
            .unwrap_or_else(|e| panic!("batch_successor: {e}"))
    }

    /// One fault-observable attempt of [`PimSkipList::batch_successor`]
    /// (the retry loop lives in [`PimSkipList::try_batch_successor`]).
    pub(crate) fn successor_attempt(
        &mut self,
        keys: &[Key],
    ) -> PimResult<Vec<Option<(Key, Handle)>>> {
        let results = self.spanned("successor", |s| s.point_search_unique(keys))?;
        Ok(keys
            .iter()
            .map(|k| {
                let d = &results[k];
                // Null-handle check, not sentinel-key check: a resident
                // `i64::MAX` key is a legitimate successor.
                if d.succ.is_null() {
                    None
                } else {
                    Some((d.succ_key, d.succ))
                }
            })
            .collect())
    }

    /// Batched Predecessor: for each key, the largest resident key `≤` it,
    /// or `None` before the beginning.
    pub fn batch_predecessor(&mut self, keys: &[Key]) -> Vec<Option<(Key, Handle)>> {
        self.try_batch_predecessor(keys)
            .unwrap_or_else(|e| panic!("batch_predecessor: {e}"))
    }

    /// One fault-observable attempt of [`PimSkipList::batch_predecessor`].
    pub(crate) fn predecessor_attempt(
        &mut self,
        keys: &[Key],
    ) -> PimResult<Vec<Option<(Key, Handle)>>> {
        let results = self.spanned("predecessor", |s| s.point_search_unique(keys))?;
        Ok(keys
            .iter()
            .map(|k| {
                let d = &results[k];
                // `succ_key == k` only counts when a successor node exists:
                // a query at `POS_INF` must not mistake the null-successor
                // sentinel key for a resident key.
                if d.succ.is_some() && d.succ_key == *k {
                    Some((d.succ_key, d.succ))
                } else if d.pred_key == NEG_INF {
                    None
                } else {
                    Some((d.pred_key, d.pred))
                }
            })
            .collect())
    }

    /// Sort + dedup the keys, run the pivoted search in point mode, and
    /// return per-key terminal records.
    fn point_search_unique(&mut self, keys: &[Key]) -> PimResult<HashMap<Key, DoneRec>> {
        let mut uniq = self.scratch.take_sorted_keys();
        // A pipelined-staged sort (see `crate::pipeline`) produces the same
        // bytes (keys are `Copy + Ord`, equal elements indistinguishable);
        // the sort cost is charged identically either way.
        if self.staged_sorted_keys(&mut uniq) {
            sort_cost(keys.len() as u64).charge(self.sys.metrics_mut());
        } else {
            uniq.extend_from_slice(keys);
            par_sort(&mut uniq).charge(self.sys.metrics_mut());
            uniq.dedup();
        }
        let mut reqs = self.scratch.take_reqs();
        reqs.extend(uniq.iter().enumerate().map(|(i, &key)| SearchRequest {
            op: i as u32,
            key,
            top: 0,
        }));
        let results = self.pivoted_search(&reqs);
        self.scratch.give_reqs(reqs);
        let results = match results {
            Ok(r) => r,
            Err(e) => {
                self.scratch.give_sorted_keys(uniq);
                return Err(e);
            }
        };
        // `pivoted_search` checked completeness: indexing is safe.
        let out = uniq
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, results.done[&(i as u32)]))
            .collect();
        self.scratch.give_sorted_keys(uniq);
        Ok(out)
    }
}

fn mode_for(top: u8) -> SearchMode {
    if top == 0 {
        SearchMode::Point
    } else {
        SearchMode::PredLevels { top }
    }
}
