//! Batched Delete (§4.4).
//!
//! Deletion shortcuts to the leaf through the per-module hash index (an
//! `O(log P)` speedup over Insert-in-reverse, as the paper notes), marks
//! the leaf and its up-chain, and then faces the real problem: up to
//! `P log² P` *consecutive* nodes may need to leave one horizontal list.
//! Independent parallel splices would race on shared neighbours, so the
//! marked nodes (plus one unmarked boundary node on each side) are copied
//! into CPU shared memory, spliced there with parallel randomized **list
//! contraction** [9, 28], and the surviving boundary links are written
//! back with two `RemoteWrite`s per run.
//!
//! Upper-part (replicated) nodes never enter the contraction: their whole
//! neighbourhood is replicated, so a single `UnlinkUpper` broadcast lets
//! every module splice its own copies locally, in identical order.

use std::collections::HashMap;

use pim_primitives::list_contraction::{contract_in, ContractScratch, LinkedLists, NONE};
use pim_primitives::semisort::{dedup_by_key_into, dedup_cost};
use pim_runtime::Handle;

use crate::config::{Key, POS_INF};
use crate::error::{PimError, PimResult};
use crate::list::PimSkipList;
use crate::tasks::{Reply, Task};

/// A marked node's snapshot, as reported by the modules.
#[derive(Debug, Clone, Copy)]
struct MarkedRec {
    node: Handle,
    left: Handle,
    right: Handle,
    right_key: Key,
}

/// Working storage for [`PimSkipList::splice_level`], reused (cleared)
/// across the levels of one delete batch.
#[derive(Debug, Default)]
struct SpliceBufs {
    idx_of: HashMap<u64, usize>,
    handles: Vec<Handle>,
    key_of: Vec<Key>,
    lists: LinkedLists,
    boundary_left: Vec<usize>,
    boundary_right: Vec<usize>,
    removed: Vec<bool>,
    contract: ContractScratch,
}

impl PimSkipList {
    /// Batched Delete: removes each key, returning per-key whether it was
    /// present. Duplicates within the batch are deduplicated.
    pub fn batch_delete(&mut self, keys: &[Key]) -> Vec<bool> {
        self.try_batch_delete(keys)
            .unwrap_or_else(|e| panic!("batch_delete: {e}"))
    }

    /// One fault-observable attempt of [`PimSkipList::batch_delete`].
    /// Commits removals to the journal only when every stage completed.
    pub(crate) fn delete_attempt(&mut self, keys: &[Key]) -> PimResult<Vec<bool>> {
        self.spanned("delete", |s| {
            let staged = keys.len() as u64 * 2;
            s.sys.shared_mem().alloc(staged);
            let mut extra = 0u64;
            let out = s.delete_attempt_inner(keys, &mut extra);
            s.sys.sample_shared_mem();
            s.sys.shared_mem().free(staged + extra);
            out
        })
    }

    fn delete_attempt_inner(
        &mut self,
        keys: &[Key],
        extra_staged: &mut u64,
    ) -> PimResult<Vec<bool>> {
        let mut uniq = self.scratch.take_uniq_keys();
        // A pipelined-staged dedup (see `crate::pipeline`) is the same
        // bytes as the inline one; the cost is charged either way.
        if !self.staged_uniq_keys(crate::op::OpKind::Delete, &mut uniq) {
            let mut tags = self.scratch.take_dedup_tags();
            dedup_by_key_into(keys, |&k| k as u64, &mut tags, &mut uniq);
            self.scratch.give_dedup_tags(tags);
        }
        dedup_cost(keys.len(), uniq.len()).charge(self.sys.metrics_mut());
        let mut found = self.scratch.take_flags();
        let mut answered = self.scratch.take_flags2();
        let out = self.delete_resolve(keys, &uniq, &mut found, &mut answered, extra_staged);
        self.scratch.give_flags2(answered);
        self.scratch.give_flags(found);
        self.scratch.give_uniq_keys(uniq);
        out
    }

    fn delete_resolve(
        &mut self,
        keys: &[Key],
        uniq: &[Key],
        found: &mut Vec<bool>,
        answered: &mut Vec<bool>,
        extra_staged: &mut u64,
    ) -> PimResult<Vec<bool>> {
        let before = self.sys.metrics();

        // Structural writes begin with the marks: invalidate push-pull
        // snapshots up front (coherence rule, see `crate::hotcache`).
        self.bump_write_epoch();

        // ---- Stage 1: mark leaves + towers via the hash shortcut ----
        let replies = self.spanned("delete/mark", |s| {
            for (op, &key) in uniq.iter().enumerate() {
                let m = s.module_of(key, 0);
                s.sys.send(m, Task::DeleteKey { op: op as u32, key });
            }
            s.sys.run_to_quiescence()
        });

        found.resize(uniq.len(), false);
        answered.resize(uniq.len(), false);
        let mut faulted = 0usize;
        let mut marked_by_level: HashMap<u8, Vec<MarkedRec>> = HashMap::new();
        let mut upper_slots = self.scratch.take_slots();
        let mut marked_words = 0u64;
        for r in replies {
            match r {
                Reply::Marked {
                    op,
                    node,
                    level,
                    key: _,
                    left,
                    right,
                    right_key,
                    upper_slots: ups,
                    value: _,
                } => {
                    if level == 0 {
                        found[op as usize] = true;
                        answered[op as usize] = true;
                    }
                    upper_slots.extend(ups);
                    if !node.is_replicated() {
                        marked_by_level.entry(level).or_default().push(MarkedRec {
                            node,
                            left,
                            right,
                            right_key,
                        });
                        marked_words += 4;
                    }
                }
                Reply::DeleteMissing { op } => {
                    found[op as usize] = false;
                    answered[op as usize] = true;
                }
                Reply::Faulted { .. } => faulted += 1,
                other => {
                    self.scratch.give_slots(upper_slots);
                    return Err(PimError::protocol("batch_delete", other));
                }
            }
        }
        self.sys.shared_mem().alloc(marked_words);
        *extra_staged = marked_words;
        // The marked set is only coherent if no message was lost and no
        // module crashed during the marking waves: a missing tower-node
        // `Marked` is indistinguishable from a short tower, so any fault
        // signal aborts the attempt before the splice consumes the data.
        let missing = answered.iter().filter(|&&a| !a).count();
        if faulted > 0 || missing > 0 || self.damage_since(&before) {
            self.scratch.give_slots(upper_slots);
            return Err(PimError::incomplete("batch_delete", faulted + missing));
        }

        // ---- Stage 2: CPU-side list contraction per level, then splice ----
        let mut levels: Vec<u8> = marked_by_level.keys().copied().collect();
        levels.sort_unstable();
        let mut bufs = SpliceBufs::default();
        self.spanned("delete/contract", |s| {
            for &level in &levels {
                let records = &marked_by_level[&level];
                s.splice_level(records, &mut bufs);
            }
        });

        // ---- Free marked lower nodes; unlink upper replicas ----
        // (level order: deterministic message order keeps `nth`-counted
        // drop faults replayable)
        let unlinked = self.spanned("delete/unlink", |s| {
            for &level in &levels {
                for rec in &marked_by_level[&level] {
                    s.sys
                        .send(rec.node.module(), Task::FreeNode { node: rec.node });
                }
            }
            if !upper_slots.is_empty() {
                let slots = upper_slots.clone();
                s.sys.broadcast(move |_| Task::UnlinkUpper {
                    slots: slots.clone(),
                });
                for &slot in &upper_slots {
                    s.shadow.free(slot);
                }
            }
            s.quiesce_writes("batch_delete")
        });
        self.scratch.give_slots(upper_slots);
        unlinked?;

        self.len -= found.iter().filter(|&&f| f).count() as u64;
        // Commit removals to the journal.
        for (&k, &f) in uniq.iter().zip(found.iter()) {
            if f {
                self.journal.remove(k);
            }
        }

        // ---- Map back to input order ----
        let by_key: HashMap<Key, bool> = uniq
            .iter()
            .zip(found.iter())
            .map(|(&k, &f)| (k, f))
            .collect();
        Ok(keys.iter().map(|k| by_key[k]).collect())
    }

    /// Contract one level's marked nodes in shared memory and write the
    /// surviving boundary links back. `bufs` is recycled working storage.
    fn splice_level(&mut self, records: &[MarkedRec], bufs: &mut SpliceBufs) {
        // Local mirror: marked nodes + boundary nodes.
        let SpliceBufs {
            idx_of,
            handles,
            key_of, // POS_INF when unknown
            lists,
            boundary_left,
            boundary_right,
            removed,
            contract,
        } = bufs;
        idx_of.clear();
        handles.clear();
        key_of.clear();
        boundary_left.clear();
        boundary_right.clear();
        let intern = |h: Handle,
                      idx_of: &mut HashMap<u64, usize>,
                      handles: &mut Vec<Handle>,
                      key_of: &mut Vec<Key>|
         -> usize {
            *idx_of.entry(h.to_bits()).or_insert_with(|| {
                handles.push(h);
                key_of.push(POS_INF);
                handles.len() - 1
            })
        };

        // First pass: intern all marked nodes.
        for rec in records {
            intern(rec.node, idx_of, handles, key_of);
        }
        let marked_count = handles.len();

        // Second pass: links + boundary nodes.
        lists.prev.clear();
        lists.next.clear();
        lists.prev.resize(marked_count, NONE);
        lists.next.resize(marked_count, NONE);
        for rec in records {
            let me = idx_of[&rec.node.to_bits()];
            // Left neighbour.
            debug_assert!(rec.left.is_some(), "every level has a −∞ sentinel");
            let lbits = rec.left.to_bits();
            let l = match idx_of.get(&lbits) {
                Some(&i) if i < marked_count => i,
                _ => {
                    let i = intern(rec.left, idx_of, handles, key_of);
                    if i >= lists.prev.len() {
                        lists.prev.resize(i + 1, NONE);
                        lists.next.resize(i + 1, NONE);
                    }
                    boundary_left.push(i);
                    i
                }
            };
            lists.prev[me] = l;
            lists.next[l] = me;
            // Right neighbour (may be the end of the list).
            if rec.right.is_some() {
                let rbits = rec.right.to_bits();
                let r = match idx_of.get(&rbits) {
                    Some(&i) if i < marked_count => i,
                    _ => {
                        let i = intern(rec.right, idx_of, handles, key_of);
                        if i >= lists.prev.len() {
                            lists.prev.resize(i + 1, NONE);
                            lists.next.resize(i + 1, NONE);
                        }
                        key_of[i] = rec.right_key;
                        boundary_right.push(i);
                        i
                    }
                };
                key_of[r] = rec.right_key;
                lists.next[me] = r;
                lists.prev[r] = me;
            } else {
                lists.next[me] = NONE;
            }
        }

        let n = handles.len();
        removed.clear();
        removed.extend((0..n).map(|i| i < marked_count));
        contract_in(lists, removed, &mut self.rng, contract).charge(self.sys.metrics_mut());

        // Write back the boundary links.
        for &l in boundary_left.iter() {
            let r = lists.next[l];
            let (to, to_key) = if r == NONE {
                (Handle::NULL, POS_INF)
            } else {
                (handles[r], key_of[r])
            };
            self.send_write(
                handles[l],
                Task::WriteRight {
                    node: handles[l],
                    to,
                    to_key,
                },
            );
        }
        for &r in boundary_right.iter() {
            let l = lists.prev[r];
            debug_assert!(l != NONE, "right boundary lost its left link");
            self.send_write(
                handles[r],
                Task::WriteLeft {
                    node: handles[r],
                    to: handles[l],
                },
            );
        }
    }
}
