//! Batched Get and Update (§4.1).
//!
//! Both operations shortcut the skip-list structure entirely: the hash
//! `(key, 0) → module` locates the module that must own the leaf, and the
//! module's local de-amortized table resolves it in O(1) whp. A parallel
//! semisort first removes duplicates — that is the entire defence against
//! the duplicate-flood adversary, and with distinct keys Lemma 2.1 gives
//! `O(log P)` IO/PIM time per batch of `P log P`.
//!
//! The public entry points are infallible wrappers around fault-observable
//! *attempts*: the `try_*` retry loops (see `crate::recover`) re-issue an
//! attempt after recovering from injected message loss or module crashes.

use std::collections::HashMap;

use pim_primitives::semisort::{dedup_by_key_into, dedup_cost};

use crate::config::{Key, Value};
use crate::error::{PimError, PimResult};
use crate::list::PimSkipList;
use crate::tasks::{Reply, Task};

impl PimSkipList {
    /// Batched Get: the value of each key, in input order (`None` for
    /// absent keys, which are ignored structurally as the paper specifies).
    pub fn batch_get(&mut self, keys: &[Key]) -> Vec<Option<Value>> {
        self.try_batch_get(keys)
            .unwrap_or_else(|e| panic!("batch_get: {e}"))
    }

    /// One fault-observable attempt of [`PimSkipList::batch_get`].
    pub(crate) fn get_attempt(&mut self, keys: &[Key]) -> PimResult<Vec<Option<Value>>> {
        self.spanned("get", |s| {
            let staged = keys.len() as u64 * 2;
            s.sys.shared_mem().alloc(staged);
            let out = s.get_attempt_inner(keys);
            s.sys.sample_shared_mem();
            s.sys.shared_mem().free(staged);
            out
        })
    }

    fn get_attempt_inner(&mut self, keys: &[Key]) -> PimResult<Vec<Option<Value>>> {
        let mut uniq = self.scratch.take_uniq_keys();
        self.spanned("get/dedup", |s| {
            // A pipelined-staged dedup (see `crate::pipeline`) is the same
            // bytes as the inline one; the cost is charged either way, at
            // this same span point.
            if !s.staged_uniq_keys(crate::op::OpKind::Get, &mut uniq) {
                let mut tags = s.scratch.take_dedup_tags();
                dedup_by_key_into(keys, |&k| k as u64, &mut tags, &mut uniq);
                s.scratch.give_dedup_tags(tags);
            }
            dedup_cost(keys.len(), uniq.len()).charge(s.sys.metrics_mut());
        });
        let out = self.get_resolve(keys, &uniq);
        self.scratch.give_uniq_keys(uniq);
        out
    }

    fn get_resolve(&mut self, keys: &[Key], uniq: &[Key]) -> PimResult<Vec<Option<Value>>> {
        let replies = self.spanned("get/lookup", |s| {
            for (op, &key) in uniq.iter().enumerate() {
                let m = s.module_of(key, 0);
                s.sys.send(m, Task::Get { op: op as u32, key });
            }
            s.sys.run_to_quiescence()
        });

        let mut faulted = 0usize;
        let mut by_key: HashMap<Key, Option<Value>> = HashMap::with_capacity(uniq.len());
        for r in replies {
            match r {
                Reply::GotValue { op, value } => {
                    let k = *uniq
                        .get(op as usize)
                        .ok_or_else(|| PimError::protocol("batch_get", op))?;
                    by_key.insert(k, value);
                }
                Reply::Faulted { .. } => faulted += 1,
                other => return Err(PimError::protocol("batch_get", other)),
            }
        }
        self.sys.metrics_mut().charge_cpu(
            keys.len() as u64,
            pim_runtime::ceil_log2(keys.len().max(1) as u64).into(),
        );
        if faulted > 0 || by_key.len() < uniq.len() {
            return Err(PimError::incomplete(
                "batch_get",
                faulted + (uniq.len() - by_key.len()),
            ));
        }
        Ok(keys.iter().map(|k| by_key[k]).collect())
    }

    /// Batched Update: write each pair's value if the key is resident;
    /// returns per-pair whether the key was found. Duplicate keys within
    /// the batch are resolved first-wins (one canonical representative per
    /// key, as the semisort-dedup of §4.1 prescribes).
    pub fn batch_update(&mut self, pairs: &[(Key, Value)]) -> Vec<bool> {
        self.try_batch_update(pairs)
            .unwrap_or_else(|e| panic!("batch_update: {e}"))
    }

    /// One fault-observable attempt of [`PimSkipList::batch_update`].
    /// Journals applied updates on success so a later crash recovery
    /// replays them.
    pub(crate) fn update_attempt(&mut self, pairs: &[(Key, Value)]) -> PimResult<Vec<bool>> {
        self.spanned("update", |s| {
            let staged = pairs.len() as u64 * 2;
            s.sys.shared_mem().alloc(staged);
            let out = s.update_attempt_inner(pairs);
            s.sys.sample_shared_mem();
            s.sys.shared_mem().free(staged);
            out
        })
    }

    fn update_attempt_inner(&mut self, pairs: &[(Key, Value)]) -> PimResult<Vec<bool>> {
        let mut uniq = self.scratch.take_uniq_pairs();
        self.spanned("update/dedup", |s| {
            if !s.staged_uniq_pairs(crate::op::OpKind::Update, &mut uniq) {
                let mut tags = s.scratch.take_dedup_tags();
                dedup_by_key_into(pairs, |&(k, _)| k as u64, &mut tags, &mut uniq);
                s.scratch.give_dedup_tags(tags);
            }
            dedup_cost(pairs.len(), uniq.len()).charge(s.sys.metrics_mut());
        });
        let out = self.update_resolve(pairs, &uniq);
        self.scratch.give_uniq_pairs(uniq);
        out
    }

    fn update_resolve(
        &mut self,
        pairs: &[(Key, Value)],
        uniq: &[(Key, Value)],
    ) -> PimResult<Vec<bool>> {
        let replies = self.spanned("update/lookup", |s| {
            for (op, &(key, value)) in uniq.iter().enumerate() {
                let m = s.module_of(key, 0);
                s.sys.send(
                    m,
                    Task::Update {
                        op: op as u32,
                        key,
                        value,
                    },
                );
            }
            s.sys.run_to_quiescence()
        });

        let mut faulted = 0usize;
        let mut by_key: HashMap<Key, bool> = HashMap::with_capacity(uniq.len());
        for r in replies {
            match r {
                Reply::Updated { op, found } => {
                    let k = uniq
                        .get(op as usize)
                        .ok_or_else(|| PimError::protocol("batch_update", op))?
                        .0;
                    by_key.insert(k, found);
                }
                Reply::Faulted { .. } => faulted += 1,
                other => return Err(PimError::protocol("batch_update", other)),
            }
        }
        self.sys.metrics_mut().charge_cpu(
            pairs.len() as u64,
            pim_runtime::ceil_log2(pairs.len().max(1) as u64).into(),
        );
        if faulted > 0 || by_key.len() < uniq.len() {
            return Err(PimError::incomplete(
                "batch_update",
                faulted + (uniq.len() - by_key.len()),
            ));
        }
        // Commit to the journal: these writes are now part of the logical
        // contents and any subsequent recovery must reproduce them.
        for &(k, v) in uniq {
            if by_key[&k] {
                self.journal.record_update(k, v);
            }
        }
        Ok(pairs.iter().map(|(k, _)| by_key[k]).collect())
    }
}

impl PimSkipList {
    /// Dereference a batch of node handles (e.g. the pointers carried by
    /// [`crate::Reply::Entry`] answers from [`PimSkipList::batch_successor`]):
    /// one message to each owning module, `(key, value)` back — `O(1)`
    /// messages and PIM work per handle, PIM-balanced whenever the handles
    /// are (they were placed by the secret hash).
    /// Handles must be non-null and live (e.g. just returned by a search
    /// in the same quiescent period); dereferencing a stale or null handle
    /// panics, as any wild `RemoteRead` on the machine would.
    pub fn batch_read(&mut self, handles: &[pim_runtime::Handle]) -> Vec<(Key, Value)> {
        self.try_batch_read(handles)
            .unwrap_or_else(|e| panic!("batch_read: {e}"))
    }

    /// Fault-tolerant handle dereference; see [`PimSkipList::batch_read`].
    /// Idempotent, so lost messages or module crashes are retried through
    /// the read-side recovery loop like every other read.
    #[doc(hidden)]
    pub fn try_batch_read(
        &mut self,
        handles: &[pim_runtime::Handle],
    ) -> PimResult<Vec<(Key, Value)>> {
        if handles.is_empty() {
            return Ok(Vec::new());
        }
        self.retry_read("batch_read", handles.len(), |s| s.read_attempt(handles))
    }

    /// One fault-observable attempt of [`PimSkipList::batch_read`].
    pub(crate) fn read_attempt(
        &mut self,
        handles: &[pim_runtime::Handle],
    ) -> PimResult<Vec<(Key, Value)>> {
        self.spanned("read", |s| {
            for (op, &h) in handles.iter().enumerate() {
                assert!(h.is_some(), "batch_read: null handle at position {op}");
                let target = if h.is_replicated() {
                    s.random_module()
                } else {
                    h.module()
                };
                s.sys.send(
                    target,
                    Task::ReadNode {
                        op: op as u32,
                        node: h,
                    },
                );
            }
            let replies = s.sys.run_to_quiescence();
            let mut out = vec![None; handles.len()];
            let mut faulted = 0usize;
            for r in replies {
                match r {
                    Reply::NodeValue { op, key, value } => {
                        let slot = out
                            .get_mut(op as usize)
                            .ok_or_else(|| PimError::protocol("batch_read", op))?;
                        *slot = Some((key, value));
                    }
                    Reply::Faulted { .. } => faulted += 1,
                    other => return Err(PimError::protocol("batch_read", other)),
                }
            }
            if faulted > 0 || out.iter().any(Option::is_none) {
                let missing = out.iter().filter(|o| o.is_none()).count();
                return Err(PimError::incomplete("batch_read", faulted + missing));
            }
            Ok(out.into_iter().map(Option::unwrap).collect())
        })
    }
}
