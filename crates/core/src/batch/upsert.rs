//! Batched Upsert (§4.3).
//!
//! Upsert = Update where the key exists, Insert otherwise. The insert
//! pipeline follows the paper's stages exactly:
//!
//! 1. run the batched Update shortcut; survivors form the insert set;
//! 2. toss tower heights on the CPU side (secret coins);
//! 3. **allocation round** — lower-part nodes go to `hash(key, level)`
//!    modules (which also enter them into the local index and local leaf
//!    list), upper-part nodes are broadcast into the replicated arena at
//!    CPU-shadow-chosen slots;
//! 4. **wiring round** — vertical pointers and the leaf's up-chain
//!    (Insert steps 4–5);
//! 5. batched Predecessor with per-level reports (§4.2 machinery);
//! 6. **Algorithm 1** — construct the horizontal pointers, chaining runs
//!    of new nodes that share a `(pred, succ)` segment (Fig. 4);
//! 7. recompute `next_leaf` shortcuts of any new upper-part leaves.

use pim_primitives::semisort::{dedup_by_key_into, dedup_cost};
use pim_primitives::sort::par_sort_by_key;
use pim_runtime::Handle;

use crate::batch::search::SearchRequest;
use crate::config::{Key, Value};
use crate::error::{PimError, PimResult};
use crate::list::PimSkipList;
use crate::tasks::{Reply, Task};

/// Outcome of one upsert, in input order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpsertOutcome {
    /// The key existed; its value was updated in place.
    Updated,
    /// The key was inserted.
    Inserted,
}

/// Flattened per-insert towers: tower `j` occupies
/// `handles[offsets[j]..offsets[j + 1]]`, indexed by level. Two buffers
/// per batch (recyclable through [`crate::scratch::Scratch`]) instead of
/// one heap `Vec` per inserted key.
#[derive(Debug, Default)]
pub(crate) struct Towers {
    pub(crate) handles: Vec<Handle>,
    pub(crate) offsets: Vec<u32>,
}

impl Towers {
    /// Size each tower from its height and null-fill the handle slots.
    fn reset(&mut self, tops: &[u8]) {
        self.handles.clear();
        self.offsets.clear();
        self.offsets.push(0);
        for &top in tops {
            let end = self.handles.len() + top as usize + 1;
            self.handles.resize(end, Handle::NULL);
            self.offsets.push(end as u32);
        }
    }

    /// Tower `j`'s handles, indexed by level.
    pub(crate) fn get(&self, j: usize) -> &[Handle] {
        &self.handles[self.offsets[j] as usize..self.offsets[j + 1] as usize]
    }

    fn get_mut(&mut self, j: usize) -> &mut [Handle] {
        &mut self.handles[self.offsets[j] as usize..self.offsets[j + 1] as usize]
    }
}

impl PimSkipList {
    /// Batched Upsert. Duplicate keys within the batch are deduplicated
    /// first-wins; returns the per-pair outcome (duplicates report the
    /// outcome of their key's canonical occurrence).
    pub fn batch_upsert(&mut self, pairs: &[(Key, Value)]) -> Vec<UpsertOutcome> {
        self.try_batch_upsert(pairs)
            .unwrap_or_else(|e| panic!("batch_upsert: {e}"))
    }

    /// One fault-observable attempt of [`PimSkipList::batch_upsert`] (the
    /// recovery loop lives in [`PimSkipList::try_batch_upsert`]). Commits
    /// the batch to the journal only when every stage completed.
    pub(crate) fn upsert_attempt(
        &mut self,
        pairs: &[(Key, Value)],
    ) -> PimResult<Vec<UpsertOutcome>> {
        self.spanned("upsert", |s| {
            let staged = pairs.len() as u64 * 2;
            s.sys.shared_mem().alloc(staged);
            let out = s.upsert_attempt_inner(pairs);
            s.sys.sample_shared_mem();
            s.sys.shared_mem().free(staged);
            out
        })
    }

    fn upsert_attempt_inner(&mut self, pairs: &[(Key, Value)]) -> PimResult<Vec<UpsertOutcome>> {
        let mut uniq = self.scratch.take_uniq_pairs();
        // A pipelined-staged dedup (see `crate::pipeline`) is the same
        // bytes as the inline one; the cost is charged either way.
        if !self.staged_uniq_pairs(crate::op::OpKind::Upsert, &mut uniq) {
            let mut tags = self.scratch.take_dedup_tags();
            dedup_by_key_into(pairs, |&(k, _)| k as u64, &mut tags, &mut uniq);
            self.scratch.give_dedup_tags(tags);
        }
        dedup_cost(pairs.len(), uniq.len()).charge(self.sys.metrics_mut());
        let out = self.upsert_resolve(pairs, &uniq);
        self.scratch.give_uniq_pairs(uniq);
        out
    }

    fn upsert_resolve(
        &mut self,
        pairs: &[(Key, Value)],
        uniq: &[(Key, Value)],
    ) -> PimResult<Vec<UpsertOutcome>> {
        // ---- Update pass (§4.1 shortcut) ----
        let replies = self.spanned("upsert/update_pass", |s| {
            for (op, &(key, value)) in uniq.iter().enumerate() {
                let m = s.module_of(key, 0);
                s.sys.send(
                    m,
                    Task::Update {
                        op: op as u32,
                        key,
                        value,
                    },
                );
            }
            s.sys.run_to_quiescence()
        });
        let mut updated = self.scratch.take_flags();
        updated.resize(uniq.len(), false);
        let mut answered = 0usize;
        let mut faulted = 0usize;
        for r in replies {
            match r {
                Reply::Updated { op, found } => {
                    updated[op as usize] = found;
                    answered += 1;
                }
                Reply::Faulted { .. } => faulted += 1,
                other => {
                    self.scratch.give_flags(updated);
                    return Err(PimError::protocol("batch_upsert", other));
                }
            }
        }
        // Every update task answers exactly once on a healthy machine; a
        // shortfall means a dropped task/reply or a crash-wiped inbox, and
        // a `found = false` derived from silence must never reach the
        // insert path (it would duplicate the key).
        if faulted > 0 || answered < uniq.len() {
            self.scratch.give_flags(updated);
            return Err(PimError::incomplete(
                "batch_upsert",
                faulted + (uniq.len() - answered),
            ));
        }

        // ---- Insert set, sorted by key ----
        let mut inserts = self.scratch.take_inserts();
        inserts.extend(
            uniq.iter()
                .zip(&updated)
                .filter(|(_, &u)| !u)
                .map(|(&kv, _)| kv),
        );
        par_sort_by_key(&mut inserts, |&(k, _)| k).charge(self.sys.metrics_mut());

        let inserted = if inserts.is_empty() {
            Ok(())
        } else {
            self.insert_sorted(&inserts)
        };
        self.scratch.give_inserts(inserts);
        if let Err(e) = inserted {
            self.scratch.give_flags(updated);
            return Err(e);
        }

        // The inserts are journaled by `insert_sorted`; commit the updates.
        for (&(k, v), &u) in uniq.iter().zip(&updated) {
            if u {
                self.journal.record_update(k, v);
            }
        }

        // ---- Map outcomes back ----
        let outcome_by_key: std::collections::HashMap<Key, UpsertOutcome> = uniq
            .iter()
            .zip(&updated)
            .map(|(&(k, _), &u)| {
                (
                    k,
                    if u {
                        UpsertOutcome::Updated
                    } else {
                        UpsertOutcome::Inserted
                    },
                )
            })
            .collect();
        self.scratch.give_flags(updated);
        Ok(pairs.iter().map(|(k, _)| outcome_by_key[k]).collect())
    }

    /// Allocate and vertically wire the towers for a sorted batch of new
    /// keys (Insert steps 1–5): lower-part nodes go to their hashed
    /// modules (entering local index + local leaf list on arrival),
    /// upper-part nodes are broadcast into shadow-chosen replicated slots.
    /// Fills `towers` with the `tower[j][level]` handles.
    pub(crate) fn allocate_towers(
        &mut self,
        inserts: &[(Key, Value)],
        tops: &[u8],
        towers: &mut Towers,
    ) -> PimResult<()> {
        self.spanned("alloc", |s| s.allocate_towers_inner(inserts, tops, towers))
    }

    fn allocate_towers_inner(
        &mut self,
        inserts: &[(Key, Value)],
        tops: &[u8],
        towers: &mut Towers,
    ) -> PimResult<()> {
        let h_low = self.cfg.h_low;
        towers.reset(&tops[..inserts.len()]);
        for (j, &(key, value)) in inserts.iter().enumerate() {
            let top = tops[j];
            if h_low > 0 {
                for level in 0..=top.min(h_low - 1) {
                    let m = self.module_of(key, level);
                    self.sys.send(
                        m,
                        Task::AllocLower {
                            op: j as u32,
                            key,
                            value,
                            level,
                        },
                    );
                }
            }
            if top >= h_low {
                for level in h_low..=top {
                    let slot = self.shadow.alloc();
                    towers.get_mut(j)[level as usize] = Handle::replicated(slot);
                    self.sys.broadcast(|_| Task::AllocUpper {
                        slot,
                        key,
                        level,
                        value,
                    });
                }
            }
        }
        let replies = self.sys.run_to_quiescence();
        let mut faulted = 0usize;
        for r in replies {
            match r {
                Reply::Alloced { op, level, node } => {
                    towers.get_mut(op as usize)[level as usize] = node;
                }
                Reply::Faulted { .. } => faulted += 1,
                other => return Err(PimError::protocol("alloc", other)),
            }
        }
        let missing = towers.handles.iter().filter(|h| h.is_null()).count();
        if faulted > 0 || missing > 0 {
            return Err(PimError::incomplete("alloc", faulted + missing));
        }

        // ---- Vertical wiring + leaf chains (Insert steps 4–5) ----
        for j in 0..inserts.len() {
            let t = towers.get(j);
            for (l, &h) in t.iter().enumerate() {
                let up = t.get(l + 1).copied().unwrap_or(Handle::NULL);
                let down = if l > 0 { t[l - 1] } else { Handle::NULL };
                if up.is_some() || down.is_some() {
                    self.send_write(h, Task::WireVertical { node: h, up, down });
                }
            }
            if t.len() > 1 {
                // The chain is a real message payload, not staging — each
                // receiving leaf owns its copy.
                let (leaf, chain) = (t[0], t[1..].to_vec());
                self.send_write(leaf, Task::SetLeafChain { leaf, chain });
            }
        }
        self.quiesce_writes("wire")
    }

    /// Recompute the `next_leaf` shortcut of every new upper-part leaf
    /// (broadcast; must run after horizontal linking).
    pub(crate) fn fix_new_next_leaves(&mut self, towers: &Towers, tops: &[u8]) -> PimResult<()> {
        let h_low = self.cfg.h_low;
        if h_low == 0 {
            return Ok(());
        }
        self.spanned("next_leaf", |s| {
            let mut fixed_any = false;
            for (j, &top) in tops.iter().enumerate() {
                if top >= h_low {
                    let slot = towers.get(j)[h_low as usize].slot();
                    s.sys.broadcast(|_| Task::FixNextLeaf { slot });
                    fixed_any = true;
                }
            }
            if fixed_any {
                s.quiesce_writes("fix_next_leaf")?;
            }
            Ok(())
        })
    }

    /// Insert a sorted, deduplicated, non-resident batch of pairs.
    /// Leasing shell around [`PimSkipList::insert_towers`]: heights and
    /// tower storage come from scratch and go back on every exit path.
    fn insert_sorted(&mut self, inserts: &[(Key, Value)]) -> PimResult<()> {
        // ---- Heights (CPU-side secret coins, drawn in key order) ----
        let mut tops = self.scratch.take_tops();
        tops.extend((0..inserts.len()).map(|_| self.rng.skiplist_height(self.cfg.max_level - 1)));
        let mut towers = Towers {
            handles: self.scratch.take_tower_handles(),
            offsets: self.scratch.take_tower_offsets(),
        };
        let out = self.insert_towers(inserts, &tops, &mut towers);
        self.scratch.give_tower_handles(towers.handles);
        self.scratch.give_tower_offsets(towers.offsets);
        self.scratch.give_tops(tops);
        out
    }

    fn insert_towers(
        &mut self,
        inserts: &[(Key, Value)],
        tops: &[u8],
        towers: &mut Towers,
    ) -> PimResult<()> {
        // ---- Allocation + vertical wiring rounds (Insert steps 1–5) ----
        self.allocate_towers(inserts, tops, towers)?;

        // ---- Batched Predecessor with per-level reports (§4.2) ----
        let mut reqs = self.scratch.take_reqs();
        reqs.extend(
            inserts
                .iter()
                .enumerate()
                .map(|(j, &(key, _))| SearchRequest {
                    op: j as u32,
                    key,
                    top: tops[j],
                }),
        );
        let results = self.pivoted_search(&reqs);
        self.scratch.give_reqs(reqs);
        let results = results?;

        // Structural writes begin here: invalidate push-pull snapshots
        // before the first link lands, so even a faulted half-applied
        // batch can never be searched through the cache.
        self.bump_write_epoch();

        // ---- Algorithm 1: horizontal pointer construction ----
        self.spanned("link", |s| {
            s.link_horizontal(inserts, tops, towers, &results)
        })?;

        // ---- Recompute next_leaf for new upper-part leaves ----
        self.fix_new_next_leaves(towers, tops)?;

        // Commit: the batch is structurally complete — journal each new
        // tower so recovery can re-materialise it handle for handle.
        for (j, &(key, value)) in inserts.iter().enumerate() {
            self.journal.record_insert(key, value, towers.get(j));
        }
        self.len += inserts.len() as u64;
        Ok(())
    }

    /// Algorithm 1 (Fig. 4): construct the horizontal pointers of every
    /// new tower, chaining runs of new nodes that share a `(pred, succ)`
    /// segment, then quiesce the writes.
    fn link_horizontal(
        &mut self,
        inserts: &[(Key, Value)],
        tops: &[u8],
        towers: &Towers,
        results: &crate::batch::search::SearchResults,
    ) -> PimResult<()> {
        struct Entry {
            cur: Handle,
            key: Key,
            pred: Handle,
            succ: Handle,
            succ_key: Key,
        }
        // A[level] staging, reused (cleared) across levels.
        let mut a: Vec<Entry> = Vec::new();
        let max_top = tops.iter().copied().max().unwrap_or(0);
        for level in 0..=max_top {
            // A[level]: new nodes at this level in ascending key order.
            a.clear();
            for (j, &(key, _)) in inserts.iter().enumerate() {
                if tops[j] < level {
                    continue;
                }
                let (pred, succ, succ_key) =
                    results
                        .pred_at(j as u32, level)
                        .ok_or(PimError::Incomplete {
                            op: "batch_upsert",
                            missing: 1,
                        })?;
                a.push(Entry {
                    cur: towers.get(j)[level as usize],
                    key,
                    pred,
                    succ,
                    succ_key,
                });
            }
            for j in 0..a.len() {
                let right_end = j + 1 == a.len() || a[j].succ != a[j + 1].succ;
                if right_end {
                    self.send_write(
                        a[j].cur,
                        Task::WriteRight {
                            node: a[j].cur,
                            to: a[j].succ,
                            to_key: a[j].succ_key,
                        },
                    );
                    if a[j].succ.is_some() {
                        self.send_write(
                            a[j].succ,
                            Task::WriteLeft {
                                node: a[j].succ,
                                to: a[j].cur,
                            },
                        );
                    }
                } else {
                    self.send_write(
                        a[j].cur,
                        Task::WriteRight {
                            node: a[j].cur,
                            to: a[j + 1].cur,
                            to_key: a[j + 1].key,
                        },
                    );
                    self.send_write(
                        a[j + 1].cur,
                        Task::WriteLeft {
                            node: a[j + 1].cur,
                            to: a[j].cur,
                        },
                    );
                }
                let left_end = j == 0 || a[j].pred != a[j - 1].pred;
                if left_end {
                    self.send_write(
                        a[j].pred,
                        Task::WriteRight {
                            node: a[j].pred,
                            to: a[j].cur,
                            to_key: a[j].key,
                        },
                    );
                    self.send_write(
                        a[j].cur,
                        Task::WriteLeft {
                            node: a[j].cur,
                            to: a[j].pred,
                        },
                    );
                }
            }
            self.sys.metrics_mut().charge_cpu(
                a.len() as u64,
                pim_runtime::ceil_log2(a.len().max(1) as u64).into(),
            );
        }
        self.quiesce_writes("link")
    }
}
