//! Slotted node arenas — a PIM module's local memory.
//!
//! Each module owns two arenas: a *local* arena for the lower-part nodes
//! hashed to it, and a *replicated* arena whose slot assignment is kept
//! identical across all modules (the paper's "replicas are stored across
//! all PIM modules at the same local memory address", §3.1).
//!
//! Replication determinism: all replicated-arena allocations and frees are
//! driven by CPU broadcasts that carry the slot explicitly
//! ([`Arena::insert_at`]), chosen by a CPU-side shadow allocator that runs
//! the same free-list policy — so replicas never diverge.

use pim_runtime::Handle;

use crate::node::Node;

/// A slotted arena with free-list reuse.
#[derive(Debug, Clone, Default)]
pub struct Arena {
    slots: Vec<Option<Node>>,
    free: Vec<u32>,
    live: usize,
}

impl Arena {
    /// An empty arena.
    pub fn new() -> Self {
        Arena::default()
    }

    /// Allocate a slot for `node`, reusing freed slots first.
    pub fn alloc(&mut self, node: Node) -> u32 {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            debug_assert!(self.slots[slot as usize].is_none());
            self.slots[slot as usize] = Some(node);
            slot
        } else {
            self.slots.push(Some(node));
            (self.slots.len() - 1) as u32
        }
    }

    /// Place `node` at an externally chosen `slot` (replicated arenas; the
    /// slot comes from the CPU-side shadow allocator). The slot must be
    /// vacant.
    pub fn insert_at(&mut self, slot: u32, node: Node) {
        let idx = slot as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        assert!(
            self.slots[idx].is_none(),
            "replicated slot {slot} already occupied — replica divergence"
        );
        self.slots[idx] = Some(node);
        self.live += 1;
    }

    /// Place `node` at `slot` unconditionally, replacing any occupant
    /// (crash recovery: a wiped module re-materialises its sentinel towers
    /// on restart, so installs must overwrite as well as insert).
    pub fn install(&mut self, slot: u32, node: Node) {
        let idx = slot as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        if self.slots[idx].is_none() {
            self.live += 1;
            self.free.retain(|&s| s != slot);
        }
        self.slots[idx] = Some(node);
    }

    /// Free a slot (panics if already vacant).
    pub fn free(&mut self, slot: u32) {
        let taken = self.slots[slot as usize].take();
        assert!(taken.is_some(), "double free of slot {slot}");
        self.live -= 1;
        self.free.push(slot);
    }

    /// Shared-slot read.
    pub fn get(&self, slot: u32) -> &Node {
        self.slots[slot as usize]
            .as_ref()
            .unwrap_or_else(|| panic!("dangling handle: slot {slot}"))
    }

    /// Shared-slot write access.
    pub fn get_mut(&mut self, slot: u32) -> &mut Node {
        self.slots[slot as usize]
            .as_mut()
            .unwrap_or_else(|| panic!("dangling handle: slot {slot}"))
    }

    /// Fault-tolerant read: `None` instead of panicking on a vacant slot
    /// (dangling handles are expected while a crashed module is being
    /// recovered; the module answers `Faulted` instead of aborting).
    pub fn get_opt(&self, slot: u32) -> Option<&Node> {
        self.slots.get(slot as usize).and_then(|s| s.as_ref())
    }

    /// Fault-tolerant write access; see [`Arena::get_opt`].
    pub fn get_mut_opt(&mut self, slot: u32) -> Option<&mut Node> {
        self.slots.get_mut(slot as usize).and_then(|s| s.as_mut())
    }

    /// Does `slot` currently hold a node?
    pub fn contains(&self, slot: u32) -> bool {
        (slot as usize) < self.slots.len() && self.slots[slot as usize].is_some()
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Is the arena empty?
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterate `(slot, node)` over live nodes.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Node)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|n| (i as u32, n)))
    }

    /// Occupied local-memory words (live nodes + slot directory overhead).
    pub fn words(&self) -> u64 {
        let node_words: u64 = self.iter().map(|(_, n)| n.words()).sum();
        node_words + self.slots.len() as u64
    }
}

/// The CPU-side shadow of every module's replicated arena allocator.
///
/// Runs the same slot policy as [`Arena::alloc`] so the CPU can name the
/// slot in the broadcast that performs the allocation.
#[derive(Debug, Clone, Default)]
pub struct ShadowAllocator {
    next: u32,
    free: Vec<u32>,
}

impl ShadowAllocator {
    /// An empty shadow.
    pub fn new() -> Self {
        ShadowAllocator::default()
    }

    /// Reserve the next slot (mirrors the modules' upcoming `insert_at`).
    pub fn alloc(&mut self) -> u32 {
        if let Some(s) = self.free.pop() {
            s
        } else {
            let s = self.next;
            self.next += 1;
            s
        }
    }

    /// Record a broadcast free.
    pub fn free(&mut self, slot: u32) {
        self.free.push(slot);
    }

    /// Build a replicated handle for a shadow-allocated slot.
    pub fn handle(slot: u32) -> Handle {
        Handle::replicated(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(k: i64) -> Node {
        Node::new(k, 0, 0)
    }

    #[test]
    fn alloc_get_free_cycle() {
        let mut a = Arena::new();
        let s1 = a.alloc(node(1));
        let s2 = a.alloc(node(2));
        assert_ne!(s1, s2);
        assert_eq!(a.get(s1).key, 1);
        assert_eq!(a.len(), 2);
        a.free(s1);
        assert_eq!(a.len(), 1);
        assert!(!a.contains(s1));
        // Freed slot is reused.
        let s3 = a.alloc(node(3));
        assert_eq!(s3, s1);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = Arena::new();
        let s = a.alloc(node(1));
        a.free(s);
        a.free(s);
    }

    #[test]
    #[should_panic(expected = "dangling handle")]
    fn dangling_read_panics() {
        let mut a = Arena::new();
        let s = a.alloc(node(1));
        a.free(s);
        let _ = a.get(s);
    }

    #[test]
    fn insert_at_grows_and_rejects_collision() {
        let mut a = Arena::new();
        a.insert_at(5, node(10));
        assert_eq!(a.get(5).key, 10);
        assert_eq!(a.len(), 1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            a.insert_at(5, node(11));
        }));
        assert!(r.is_err());
    }

    #[test]
    fn shadow_matches_arena_policy() {
        let mut shadow = ShadowAllocator::new();
        let mut arena = Arena::new();
        // Mirror a sequence of allocs and frees.
        let s0 = shadow.alloc();
        arena.insert_at(s0, node(0));
        let s1 = shadow.alloc();
        arena.insert_at(s1, node(1));
        shadow.free(s0);
        arena.free(s0);
        let s2 = shadow.alloc();
        arena.insert_at(s2, node(2));
        assert_eq!(s2, s0, "shadow must reuse the freed slot like the arena");
        assert_eq!(arena.get(s2).key, 2);
    }

    #[test]
    fn words_reflect_live_nodes() {
        let mut a = Arena::new();
        let w_empty = a.words();
        let s = a.alloc(node(1));
        assert!(a.words() > w_empty);
        a.free(s);
        // Slot directory remains, nodes gone.
        assert_eq!(a.words(), a.slots.len() as u64);
    }

    #[test]
    fn get_opt_is_total() {
        let mut a = Arena::new();
        let s = a.alloc(node(7));
        assert_eq!(a.get_opt(s).map(|n| n.key), Some(7));
        assert!(a.get_opt(s + 10).is_none());
        a.free(s);
        assert!(a.get_opt(s).is_none());
        assert!(a.get_mut_opt(s).is_none());
    }

    #[test]
    fn install_overwrites_and_inserts() {
        let mut a = Arena::new();
        a.install(3, node(1));
        assert_eq!(a.len(), 1);
        a.install(3, node(2));
        assert_eq!(a.len(), 1, "overwrite must not double-count");
        assert_eq!(a.get(3).key, 2);
        // Installing into a freed slot must remove it from the free list so
        // a later alloc cannot clobber the installed node.
        let s = a.alloc(node(9));
        a.free(s);
        a.install(s, node(10));
        let s2 = a.alloc(node(11));
        assert_ne!(s2, s);
        assert_eq!(a.get(s).key, 10);
    }

    #[test]
    fn iter_skips_freed() {
        let mut a = Arena::new();
        let s1 = a.alloc(node(1));
        let _s2 = a.alloc(node(2));
        a.free(s1);
        let keys: Vec<i64> = a.iter().map(|(_, n)| n.key).collect();
        assert_eq!(keys, vec![2]);
    }
}
