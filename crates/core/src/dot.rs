//! Graphviz export of the structure — Fig. 2, generated.
//!
//! [`PimSkipList::to_dot`] renders the machine's current state in the
//! visual language of the paper's Figure 2: one row per level, upper-part
//! (replicated) nodes in white, lower-part nodes coloured by owning
//! module, solid horizontal edges for the point-operation pointers and
//! dashed edges for the range-operation pointers (`local_right` of one
//! chosen module, plus its `next_leaf` shortcuts).
//!
//! ```bash
//! cargo run --release -p pim-examples --bin quickstart  # then, in code:
//! # std::fs::write("skiplist.dot", list.to_dot(Some(0)))?;
//! # dot -Tsvg skiplist.dot -o skiplist.svg
//! ```

use std::fmt::Write as _;

use pim_runtime::Handle;

use crate::config::NEG_INF;
use crate::list::PimSkipList;

/// Pastel fill colours cycled over module ids (white is reserved for
/// replicated nodes, matching Fig. 2).
const COLORS: [&str; 8] = [
    "#aecbfa", "#f8bbd0", "#c8e6c9", "#ffe082", "#d1c4e9", "#ffccbc", "#b2dfdb", "#e6ee9c",
];

impl PimSkipList {
    /// Render the structure as Graphviz. When `local_lists_of` names a
    /// module, that module's local leaf list and `next_leaf` shortcuts are
    /// drawn as dashed edges (Fig. 2's dashed pointers). Intended for
    /// small structures (documentation, debugging); output size is
    /// `O(n log n)`.
    pub fn to_dot(&self, local_lists_of: Option<u32>) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph pim_skiplist {{");
        let _ = writeln!(out, "  rankdir=LR; node [shape=box, style=filled];");

        let name = |h: Handle| -> String {
            if h.is_replicated() {
                format!("r{}", h.slot())
            } else {
                format!("m{}s{}", h.module(), h.slot())
            }
        };

        // One subgraph rank per level; walk each level's chain.
        for level in 0..=self.cfg.max_level {
            let mut cur = Handle::replicated(u32::from(level));
            let mut row: Vec<String> = Vec::new();
            let mut edges: Vec<String> = Vec::new();
            loop {
                let n = self.inspect(cur);
                let label = if n.key == NEG_INF {
                    format!("-inf L{level}")
                } else if level == 0 {
                    format!("{} = {}", n.key, n.value)
                } else {
                    format!("{}", n.key)
                };
                let fill = if cur.is_replicated() {
                    "white".to_string()
                } else {
                    COLORS[cur.module() as usize % COLORS.len()].to_string()
                };
                row.push(format!(
                    "    {} [label=\"{}\", fillcolor=\"{}\"];",
                    name(cur),
                    label,
                    fill
                ));
                if n.right.is_some() {
                    edges.push(format!("  {} -> {};", name(cur), name(n.right)));
                }
                if n.down.is_some() {
                    edges.push(format!(
                        "  {} -> {} [weight=0, style=dotted, arrowsize=0.5];",
                        name(cur),
                        name(n.down)
                    ));
                }
                if n.right.is_null() {
                    break;
                }
                cur = n.right;
            }
            // Skip empty sentinel-only levels above the data to keep the
            // picture readable.
            if level > self.cfg.h_low && row.len() <= 1 {
                continue;
            }
            let _ = writeln!(out, "  subgraph level{level} {{ rank=same;");
            for r in &row {
                let _ = writeln!(out, "{r}");
            }
            let _ = writeln!(out, "  }}");
            for e in &edges {
                let _ = writeln!(out, "{e}");
            }
        }

        // Dashed range-operation pointers of one module.
        if let Some(m) = local_lists_of {
            if self.cfg.h_low > 0 && m < self.p() {
                // Local leaf list.
                let mut cur = self.inf_leaf();
                loop {
                    let n = self.inspect_at(m, cur);
                    if n.local_right.is_null() {
                        break;
                    }
                    let _ = writeln!(
                        out,
                        "  {} -> {} [style=dashed, color=\"#555555\", constraint=false];",
                        name(cur),
                        name(n.local_right)
                    );
                    cur = n.local_right;
                }
                // next_leaf shortcuts of the upper leaves.
                for (slot, n) in self.sys.module(m).upper.iter() {
                    if n.level == self.cfg.h_low && n.next_leaf.is_some() {
                        let _ = writeln!(
                            out,
                            "  r{} -> {} [style=dashed, color=\"#aa3333\", constraint=false];",
                            slot,
                            name(n.next_leaf)
                        );
                    }
                }
            }
        }
        let _ = writeln!(out, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::config::Config;
    use crate::list::PimSkipList;

    #[test]
    fn dot_output_is_wellformed() {
        let mut list = PimSkipList::new(Config::new(4, 64, 21));
        list.batch_upsert(&[(1, 10), (5, 50), (9, 90)]);
        let dot = list.to_dot(Some(0));
        assert!(dot.starts_with("digraph pim_skiplist {"));
        assert!(dot.trim_end().ends_with('}'));
        // Every key appears, values at level 0.
        assert!(dot.contains("1 = 10"));
        assert!(dot.contains("5 = 50"));
        assert!(dot.contains("9 = 90"));
        // Balanced braces.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }

    #[test]
    fn dot_marks_replicated_nodes_white() {
        let mut list = PimSkipList::new(Config::new(4, 64, 22));
        list.batch_upsert(&[(3, 30)]);
        let dot = list.to_dot(None);
        assert!(dot.contains("fillcolor=\"white\""));
        assert!(dot.contains("-inf L0"));
    }

    #[test]
    fn dot_includes_dashed_pointers_when_requested() {
        let mut list = PimSkipList::new(Config::new(2, 64, 23));
        list.batch_upsert(&(0..20).map(|i| (i, i as u64)).collect::<Vec<_>>());
        let with = list.to_dot(Some(0));
        let without = list.to_dot(None);
        assert!(with.contains("style=dashed"));
        assert!(!without.contains("style=dashed"));
    }
}
