//! Configuration of the PIM skip list.

use pim_runtime::ceil_log2;

/// Keys are signed 64-bit integers; `i64::MIN` is reserved for the −∞
/// sentinel tower.
pub type Key = i64;
/// Values are single words, matching the model's constant-size messages.
pub type Value = u64;

/// The −∞ sentinel key.
pub const NEG_INF: Key = i64::MIN;
/// Conceptual +∞ (used for `right_key` of list tails).
pub const POS_INF: Key = i64::MAX;

/// Construction parameters of a [`crate::list::PimSkipList`].
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of PIM modules, `P`.
    pub p: u32,
    /// Secret seed for hashing and tower coin tosses (the adversary never
    /// sees it, per the model's batch constraints).
    pub seed: u64,
    /// Height of the lower (distributed) part: levels `0..h_low` are hashed
    /// to modules; levels `≥ h_low` are replicated. The paper sets
    /// `h_low = log P` (§3.1), which is the default.
    pub h_low: u8,
    /// Total number of levels (`0..=max_level`); towers are capped here.
    /// Sized `h_low + 2·log2(expected_n) + 8` by default so the cap is
    /// irrelevant whp.
    pub max_level: u8,
    /// Record per-node access counts during searches (Lemma 4.2
    /// instrumentation; off by default — it is test/experiment machinery,
    /// not part of the data structure).
    pub track_contention: bool,
    /// How many times a batch operation is re-issued (with recovery in
    /// between) when an injected fault loses messages or crashes a module,
    /// before the driver gives up with
    /// [`crate::error::PimError::RetriesExhausted`]. Irrelevant on a
    /// fault-free machine. Default 3.
    pub max_retries: u32,
    /// Record every committed [`crate::Op`] run of
    /// [`crate::list::PimSkipList::try_execute`] in the journal's op log
    /// (host-DRAM bookkeeping, unmetered). Off by default: the log grows
    /// with the op stream, which long soaks don't want. With it on, a
    /// recovered structure provably equals a fresh one replaying the log
    /// through `execute` (see the chaos suite).
    pub record_op_log: bool,
    /// Pipeline consecutive coalescible runs through
    /// [`crate::list::PimSkipList::try_execute`]: while run `k` executes
    /// its rounds on the machine, a side thread stages run `k+1`'s
    /// CPU-side preprocessing (extraction, dedup, sort). Dark by default;
    /// seeded from the `PIM_PIPELINE` environment variable (`1`/`true`) by
    /// [`Config::new`]. Changes wall-clock only — replies, contents,
    /// metrics, traces and telemetry are byte-identical either way (the
    /// CI `pipeline-determinism` step diffs them).
    pub pipeline: bool,
    /// Push-pull batch search (PIM-tree, same authors): keep a bounded
    /// CPU-side **hot-node cache** of lower-part nodes, resolve the
    /// cached prefix of every hinted search descent locally in a
    /// pre-pass, and ship only the residual waves to modules — a fully
    /// cached wave sends nothing and costs **zero rounds**. Admission
    /// and eviction are deterministic (per-batch access counts, halved
    /// each batch; ties broken by handle bits), coherence is by
    /// write-epoch invalidation (any Upsert/Delete/bulk-load/recovery
    /// commit drops the cached snapshots; counts survive), and every
    /// CPU-resolved step is charged as §2.1 CPU work. Dark by default;
    /// seeded from `PIM_PUSH_PULL` by [`Config::new`]. **Off is
    /// byte-identical to a build without the feature** (replies,
    /// metrics, traces, WAL frames — the CI `skew` job diffs them); on
    /// changes metrics/traces (fewer rounds) but never replies or
    /// contents.
    pub push_pull: bool,
}

impl Config {
    /// The paper's defaults for `p` modules and about `expected_n` keys.
    pub fn new(p: u32, expected_n: u64, seed: u64) -> Self {
        let h_low = ceil_log2(u64::from(p)) as u8;
        let max_level = (h_low as u32 + 2 * ceil_log2(expected_n.max(16)) + 8).min(63) as u8;
        Config {
            p,
            seed,
            h_low,
            max_level,
            track_contention: false,
            max_retries: 3,
            record_op_log: false,
            pipeline: pipeline_from_env(),
            push_pull: push_pull_from_env(),
        }
    }

    /// [`Config::new`], then apply every `PIM_*` environment override in
    /// one place: `PIM_PIPELINE` (run pipelining) today, with thread count
    /// and shard count read by the executor and cluster tiers from the
    /// same parsed [`pim_runtime::EnvSettings`]. This is the supported way
    /// to build an environment-driven config; layered configs
    /// (`ServiceConfig`, `ClusterConfig`) wrap the result rather than
    /// re-parsing variables themselves.
    pub fn from_env(p: u32, expected_n: u64, seed: u64) -> Self {
        Self::new(p, expected_n, seed).with_settings(&pim_runtime::EnvSettings::from_env())
    }

    /// Apply pre-parsed [`pim_runtime::EnvSettings`] (unit-testable
    /// counterpart of [`Config::from_env`]; settings that do not concern
    /// the core config — threads, shards — are ignored here and consumed
    /// by their own tiers).
    pub fn with_settings(mut self, settings: &pim_runtime::EnvSettings) -> Self {
        if let Some(pipeline) = settings.pipeline {
            self.pipeline = pipeline;
        }
        if let Some(push_pull) = settings.push_pull {
            self.push_pull = push_pull;
        }
        self
    }

    /// Override the recovery retry budget (chaos testing).
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Override the lower-part height (the `ABL-HLOW` ablation experiment).
    pub fn with_h_low(mut self, h_low: u8) -> Self {
        assert!(h_low < self.max_level, "need at least one upper level");
        self.h_low = h_low;
        self
    }

    /// Enable Lemma 4.2 contention instrumentation.
    pub fn with_contention_tracking(mut self) -> Self {
        self.track_contention = true;
        self
    }

    /// Enable the journal op log (see [`Config::record_op_log`]).
    pub fn with_op_log(mut self) -> Self {
        self.record_op_log = true;
        self
    }

    /// Explicitly set run pipelining (see [`Config::pipeline`]),
    /// overriding whatever `PIM_PIPELINE` seeded.
    pub fn with_pipeline(mut self, pipeline: bool) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Explicitly set push-pull batch search (see [`Config::push_pull`]),
    /// overriding whatever `PIM_PUSH_PULL` seeded.
    pub fn with_push_pull(mut self, push_pull: bool) -> Self {
        self.push_pull = push_pull;
        self
    }

    /// Hot-node cache capacity (records) used when [`Config::push_pull`]
    /// is on: enough to hold every node — upper and lower part — that a
    /// `P log² P` batch's search paths touch (≈ `batch · log n` before
    /// sharing, far less after), so a repeated workload converges to
    /// CPU-only descents instead of thrashing at the admission boundary.
    /// Config-derived constant — no wall-clock, no feedback — so
    /// admission stays a deterministic function of the op stream.
    pub fn push_pull_capacity(&self) -> usize {
        (16 * self.batch_large()).max(4096)
    }

    /// `ceil(log2 P)` as used in batch-size recommendations.
    pub fn log_p(&self) -> u32 {
        ceil_log2(u64::from(self.p))
    }

    /// The paper's minimum batch size for Get/Update: `P log P`.
    pub fn batch_small(&self) -> usize {
        (self.p * self.log_p()) as usize
    }

    /// The paper's batch size for Successor/Upsert/Delete/ranges:
    /// `P log² P`.
    pub fn batch_large(&self) -> usize {
        (self.p * self.log_p() * self.log_p()) as usize
    }
}

/// `PIM_PIPELINE=1` (or `true`) turns run pipelining on everywhere a
/// `Config` is built with [`Config::new`]; anything else — including the
/// variable being absent — leaves it dark. Parsing itself lives in
/// [`pim_runtime::EnvSettings`], the one `PIM_*` parser.
fn pipeline_from_env() -> bool {
    pim_runtime::EnvSettings::from_env()
        .pipeline
        .unwrap_or(false)
}

/// `PIM_PUSH_PULL=1` (or `true`) turns push-pull batch search on
/// everywhere a `Config` is built with [`Config::new`]; anything else —
/// including the variable being absent — leaves it dark. Parsing lives in
/// [`pim_runtime::EnvSettings`], the one `PIM_*` parser.
fn push_pull_from_env() -> bool {
    pim_runtime::EnvSettings::from_env()
        .push_pull
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = Config::new(16, 1 << 20, 42);
        assert_eq!(c.h_low, 4);
        assert!(c.max_level > c.h_low + 40);
        assert_eq!(c.log_p(), 4);
        assert_eq!(c.batch_small(), 64);
        assert_eq!(c.batch_large(), 256);
    }

    #[test]
    fn non_power_of_two_p() {
        let c = Config::new(12, 1024, 1);
        assert_eq!(c.h_low, 4); // ceil(log2 12) = 4
        assert_eq!(c.batch_small(), 48);
    }

    #[test]
    fn h_low_override() {
        let c = Config::new(16, 1024, 1).with_h_low(0);
        assert_eq!(c.h_low, 0);
    }

    #[test]
    #[should_panic]
    fn h_low_must_leave_upper_levels() {
        let c = Config::new(4, 64, 1);
        let _ = c.clone().with_h_low(c.max_level);
    }

    #[test]
    fn settings_override_pipeline_only_when_present() {
        use pim_runtime::EnvSettings;
        let base = Config::new(4, 64, 1).with_pipeline(false);
        let on = base.clone().with_settings(&EnvSettings {
            pipeline: Some(true),
            ..EnvSettings::default()
        });
        assert!(on.pipeline);
        let untouched = base.clone().with_settings(&EnvSettings::default());
        assert!(!untouched.pipeline);
        // Threads/shards are other tiers' business; the core config
        // ignores them.
        let other = base.with_settings(&EnvSettings {
            threads: Some(8),
            shards: Some(4),
            pipeline: None,
            push_pull: None,
        });
        assert!(!other.pipeline);
        assert_eq!(other.p, 4);
    }

    #[test]
    fn settings_override_push_pull_only_when_present() {
        use pim_runtime::EnvSettings;
        let base = Config::new(4, 64, 1).with_push_pull(false);
        let on = base.clone().with_settings(&EnvSettings {
            push_pull: Some(true),
            ..EnvSettings::default()
        });
        assert!(on.push_pull);
        let untouched = base.with_settings(&EnvSettings::default());
        assert!(!untouched.push_pull);
    }

    #[test]
    fn push_pull_capacity_covers_a_large_batch() {
        let c = Config::new(16, 1 << 20, 42);
        assert!(c.push_pull_capacity() >= 8 * c.batch_large());
        assert!(Config::new(2, 64, 1).push_pull_capacity() >= 1024);
    }
}
