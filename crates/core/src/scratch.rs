//! Reusable staging buffers for the batch hot path.
//!
//! Every batch operation stages CPU-side vectors — the typed-op splitter
//! collects a run's keys/pairs/ranges, point searches sort-dedup a key
//! buffer and build their request list, deletes accumulate upper-slot
//! marks. Allocating those afresh per batch is invisible to the model's
//! metrics but dominates the simulator's wall clock once `pim-service`
//! executes batches continuously. [`Scratch`] keeps one drained buffer of
//! each shape on the structure, so repeated [`crate::PimSkipList::execute`]
//! calls reuse capacity across batches (the core-side half of the
//! steady-state allocation contract in `docs/MODEL.md`; the runtime-side
//! half is [`pim_runtime::buffers`]).
//!
//! Discipline: a buffer is *leased* with `take_*` (leaving an empty stand-in
//! via `mem::take`) and *returned* with `give_*`, which clears it and
//! shelves its capacity. A nested lease of the same buffer is safe — the
//! inner caller simply gets a cold (empty, capacity-0) vector — so the
//! pattern cannot deadlock or double-free; it only ever trades a missed
//! reuse for correctness. Leases never cross a batch boundary, and the
//! buffers hold no live data between batches, so recycling is
//! observation-free: replies, metrics and traces are byte-identical to the
//! allocate-per-batch engine.

use pim_runtime::Handle;

use crate::batch::search::SearchRequest;
use crate::config::{Key, Value};

macro_rules! lease {
    ($take:ident, $give:ident, $field:ident, $t:ty) => {
        /// Lease the buffer (always comes back empty; capacity reused).
        pub(crate) fn $take(&mut self) -> Vec<$t> {
            std::mem::take(&mut self.$field)
        }

        /// Return a leased buffer: cleared here, capacity shelved.
        pub(crate) fn $give(&mut self, mut buf: Vec<$t>) {
            buf.clear();
            self.$field = buf;
        }
    };
}

/// Reusable per-structure staging storage (see module docs).
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// Key staging: op-run collection, sort-dedup inputs.
    keys: Vec<Key>,
    /// Pair staging: update/upsert run collection.
    pairs: Vec<(Key, Value)>,
    /// Range staging: range-run collection.
    ranges: Vec<(Key, Key)>,
    /// Sorted unique keys for point searches.
    sorted_keys: Vec<Key>,
    /// Pivoted-search request list.
    reqs: Vec<SearchRequest>,
    /// Delete-side upper-slot mark set.
    slots: Vec<u32>,
    /// Range-split cut points.
    cuts: Vec<Key>,
    /// Upsert insert set (distinct from `pairs`, which the op-splitter
    /// holds leased while the upsert runs).
    inserts: Vec<(Key, Value)>,
    /// Upsert per-key update flags.
    flags: Vec<bool>,
    /// Second flag set (delete tracks `found` and `answered` at once).
    flags2: Vec<bool>,
    /// `(key, index)` staging for the in-place batch dedup.
    dedup_tags: Vec<(u64, u32)>,
    /// Dedup survivors, key batches (distinct from `keys`, which the
    /// op-splitter holds leased while the attempt runs).
    uniq_keys: Vec<Key>,
    /// Dedup survivors, pair batches (distinct from `pairs`, same reason).
    uniq_pairs: Vec<(Key, Value)>,
    /// Insert tower heights.
    tops: Vec<u8>,
    /// Flattened insert-tower handles (see `batch::upsert::Towers`).
    tower_handles: Vec<Handle>,
    /// Per-insert offsets into `tower_handles`.
    tower_offsets: Vec<u32>,
    /// `(start, end)` run boundaries for the pipelined op driver.
    run_bounds: Vec<(usize, usize)>,
    /// Pivoted-search wavefront staging (see `batch::search`).
    wave_items: Vec<crate::batch::search::WaveItem>,
    /// Upper-level pivot indices for pivoted searches.
    pivots: Vec<usize>,
    /// Wavefront `(start, end)` segment lists (two generations).
    segments: Vec<(usize, usize)>,
    /// Second segment buffer (next wavefront generation).
    segments2: Vec<(usize, usize)>,
    /// `(path index, request index)` copy list for wave stitching.
    copies: Vec<(u32, u32)>,
    /// Range-split coverage sweep deltas.
    range_delta: Vec<i64>,
    /// Range-split cut-cell → subrange index map.
    cell_to_sub: Vec<usize>,
    /// Hot-cache admission ranking `(count, handle bits)`.
    count_rank: Vec<(u32, u64)>,
    /// Hot-cache admitted set / pull staging (handle bits, sorted).
    pull_list: Vec<u64>,
}

impl Scratch {
    lease!(take_keys, give_keys, keys, Key);
    lease!(take_pairs, give_pairs, pairs, (Key, Value));
    lease!(take_ranges, give_ranges, ranges, (Key, Key));
    lease!(take_sorted_keys, give_sorted_keys, sorted_keys, Key);
    lease!(take_reqs, give_reqs, reqs, SearchRequest);
    lease!(take_slots, give_slots, slots, u32);
    lease!(take_cuts, give_cuts, cuts, Key);
    lease!(take_inserts, give_inserts, inserts, (Key, Value));
    lease!(take_flags, give_flags, flags, bool);
    lease!(take_flags2, give_flags2, flags2, bool);
    lease!(take_dedup_tags, give_dedup_tags, dedup_tags, (u64, u32));
    lease!(take_uniq_keys, give_uniq_keys, uniq_keys, Key);
    lease!(take_uniq_pairs, give_uniq_pairs, uniq_pairs, (Key, Value));
    lease!(take_tops, give_tops, tops, u8);
    lease!(
        take_tower_handles,
        give_tower_handles,
        tower_handles,
        Handle
    );
    lease!(take_tower_offsets, give_tower_offsets, tower_offsets, u32);
    lease!(take_run_bounds, give_run_bounds, run_bounds, (usize, usize));
    lease!(
        take_wave_items,
        give_wave_items,
        wave_items,
        crate::batch::search::WaveItem
    );
    lease!(take_pivots, give_pivots, pivots, usize);
    lease!(take_segments, give_segments, segments, (usize, usize));
    lease!(take_segments2, give_segments2, segments2, (usize, usize));
    lease!(take_copies, give_copies, copies, (u32, u32));
    lease!(take_range_delta, give_range_delta, range_delta, i64);
    lease!(take_cell_to_sub, give_cell_to_sub, cell_to_sub, usize);
    lease!(take_count_rank, give_count_rank, count_rank, (u32, u64));
    lease!(take_pull_list, give_pull_list, pull_list, u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_round_trip_recycles_capacity() {
        let mut s = Scratch::default();
        let mut keys = s.take_keys();
        keys.extend([3, 1, 2]);
        let cap = keys.capacity();
        s.give_keys(keys);
        let again = s.take_keys();
        assert!(again.is_empty(), "leased buffers always start empty");
        assert_eq!(again.capacity(), cap, "capacity survives the round trip");
    }

    #[test]
    fn nested_lease_degrades_to_cold_buffer() {
        let mut s = Scratch::default();
        let outer = s.take_slots();
        let inner = s.take_slots();
        assert!(inner.is_empty() && inner.capacity() == 0);
        s.give_slots(outer);
        s.give_slots(inner);
    }
}
