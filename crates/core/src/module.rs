//! The per-module state and task handlers of the PIM skip list.
//!
//! A [`SkipModule`] is one PIM module's view of the structure (§3.1):
//!
//! * a **replicated arena** holding the upper part *and* the −∞ sentinel
//!   tower (identical slots on every module; the paper replicates the −∞
//!   tower's upper nodes and we extend the replication to the whole
//!   sentinel tower — O(log n) nodes — so every module has a local list
//!   head, see Fig. 2 where −∞ is drawn white/replicated at every level);
//! * a **local arena** holding the lower-part nodes hashed to this module
//!   by `(key, level)`;
//! * the **local index** (de-amortized cuckoo map, §4.1) mapping keys of
//!   locally-owned leaves to their handles;
//! * the **local leaf list** (`local_left`/`local_right` + per-replica
//!   `next_leaf` shortcuts), maintained on every leaf allocation/removal.

use std::collections::HashMap;

use pim_runtime::{Handle, ModuleCtx, ModuleId, PimModule};

use pim_hashtable::DeamortizedMap;

use crate::arena::Arena;
use crate::config::{Key, POS_INF};
use crate::node::Node;
use crate::tasks::{RangeFunc, Reply, SearchMode, Task, NO_OP};

/// Per-fragment aggregation state of the reduction range functions.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Agg {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Agg {
    fn new() -> Self {
        Agg {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn absorb(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    fn any(&self) -> bool {
        self.count > 0
    }
}

/// Construction parameters shared by all modules of one structure.
#[derive(Debug, Clone)]
pub struct ModuleParams {
    /// Number of PIM modules, `P`.
    pub p: u32,
    /// Lower-part height: levels `0..h_low` are distributed.
    pub h_low: u8,
    /// Topmost level (root level).
    pub max_level: u8,
    /// Index hash seed (same derivation per module is fine: each module
    /// indexes a disjoint key set).
    pub seed: u64,
    /// Record per-node access counts during Search tasks (Lemma 4.2).
    pub track_contention: bool,
}

/// One PIM module of the skip list.
pub struct SkipModule {
    id: ModuleId,
    params: ModuleParams,
    /// Replicated arena (upper part + −∞ tower).
    pub upper: Arena,
    /// Local arena (lower-part nodes owned by this module).
    pub lower: Arena,
    /// Local key → leaf-handle index.
    pub index: DeamortizedMap,
    /// Root of the structure (topmost −∞ node, replicated).
    pub root: Handle,
    /// The −∞ leaf (replicated) heading this module's local leaf list.
    pub inf_leaf: Handle,
    /// Tail of this module's local leaf list (the −∞ leaf when empty).
    pub leaf_tail: Handle,
    /// Lemma 4.2 instrumentation: per-node access counts of Search tasks
    /// since the last [`SkipModule::take_contention`].
    pub contention: HashMap<u64, u32>,
}

impl SkipModule {
    /// A module with the −∞ sentinel tower materialised in the replicated
    /// arena at slots `0..=max_level` (slot = level, fixed convention).
    pub fn new(id: ModuleId, params: ModuleParams) -> Self {
        let mut upper = Arena::new();
        let max = params.max_level;
        for level in 0..=max {
            let mut n = Node::new(crate::config::NEG_INF, 0, level);
            if level < max {
                n.up = Handle::replicated(u32::from(level) + 1);
            }
            if level > 0 {
                n.down = Handle::replicated(u32::from(level) - 1);
            }
            upper.insert_at(u32::from(level), n);
        }
        let inf_leaf = Handle::replicated(0);
        SkipModule {
            id,
            params,
            upper,
            lower: Arena::new(),
            index: DeamortizedMap::new(64, pim_runtime::hashfn::hash2(0x1d, 0, u64::from(id))),
            root: Handle::replicated(u32::from(max)),
            inf_leaf,
            leaf_tail: inf_leaf,
            contention: HashMap::new(),
        }
    }

    /// Can this module resolve `h` in its own memory?
    #[inline]
    pub fn resolvable(&self, h: Handle) -> bool {
        h.is_replicated() || h.module() == self.id
    }

    /// Read a node (must be resolvable).
    pub fn node(&self, h: Handle) -> &Node {
        debug_assert!(
            self.resolvable(h),
            "module {} cannot resolve {h:?}",
            self.id
        );
        if h.is_replicated() {
            self.upper.get(h.slot())
        } else {
            self.lower.get(h.slot())
        }
    }

    /// Write access to a node (must be resolvable).
    pub fn node_mut(&mut self, h: Handle) -> &mut Node {
        debug_assert!(
            self.resolvable(h),
            "module {} cannot resolve {h:?}",
            self.id
        );
        if h.is_replicated() {
            self.upper.get_mut(h.slot())
        } else {
            self.lower.get_mut(h.slot())
        }
    }

    /// Fault-tolerant node read: `None` for unresolvable or dangling
    /// handles instead of panicking. Task handlers reached from the CPU
    /// driver use this so a post-crash dangling handle yields a
    /// [`Reply::Faulted`] the driver can recover from, not an abort.
    pub fn try_node(&self, h: Handle) -> Option<&Node> {
        if !self.resolvable(h) {
            return None;
        }
        if h.is_replicated() {
            self.upper.get_opt(h.slot())
        } else {
            self.lower.get_opt(h.slot())
        }
    }

    /// Fault-tolerant node write access; see [`SkipModule::try_node`].
    pub fn try_node_mut(&mut self, h: Handle) -> Option<&mut Node> {
        if !self.resolvable(h) {
            return None;
        }
        if h.is_replicated() {
            self.upper.get_mut_opt(h.slot())
        } else {
            self.lower.get_mut_opt(h.slot())
        }
    }

    #[inline]
    fn touch(&mut self, h: Handle) {
        if self.params.track_contention {
            *self.contention.entry(h.to_bits()).or_insert(0) += 1;
        }
    }

    /// Drain the contention counters (driver-side instrumentation; not a
    /// model operation).
    pub fn take_contention(&mut self) -> HashMap<u64, u32> {
        std::mem::take(&mut self.contention)
    }

    /// Toggle per-node access counting at runtime (probe instrumentation;
    /// see [`crate::PimSkipList::set_module_contention_tracking`]).
    pub fn set_contention_tracking(&mut self, on: bool) {
        self.params.track_contention = on;
    }

    // ------------------------------------------------------------------
    // Local upper-part navigation (all replicated, zero messages)
    // ------------------------------------------------------------------

    /// Descend the local replica from the root to the rightmost node at
    /// `target_level` with key `< k` (strict). Returns its handle; counts
    /// the visited nodes as work via the returned counter.
    fn upper_descend(&self, k: Key, target_level: u8) -> (Handle, u64) {
        self.upper_descend_by(k, target_level, false)
    }

    /// As [`Self::upper_descend`] but with an inclusive comparison:
    /// rightmost node with key `≤ k`.
    fn upper_descend_inclusive(&self, k: Key, target_level: u8) -> (Handle, u64) {
        self.upper_descend_by(k, target_level, true)
    }

    fn upper_descend_by(&self, k: Key, target_level: u8, inclusive: bool) -> (Handle, u64) {
        let mut cur = self.root;
        let mut work = 0u64;
        loop {
            work += 1;
            let n = self.upper.get(cur.slot());
            // The strict form can rely on `right_key < k` implying a right
            // neighbour exists (the null sentinel is `POS_INF`); the
            // inclusive form must check explicitly, since `k` itself can
            // be `i64::MAX`.
            let go_right = n.right.is_some()
                && if inclusive {
                    n.right_key <= k
                } else {
                    n.right_key < k
                };
            if go_right {
                cur = n.right;
                debug_assert!(cur.is_replicated(), "upper walk left the replica");
            } else if n.level > target_level {
                cur = n.down;
            } else {
                return (cur, work);
            }
        }
    }

    /// First leaf of this module's local list with key `≥ k`, via the
    /// upper-part `next_leaf` shortcut (§5.1 steps 1–3). Returns
    /// `(leaf_or_null, predecessor_in_local_list, work)`.
    fn local_successor(&self, k: Key) -> (Handle, Handle, u64) {
        let (anchor, mut work) = self.upper_descend(k, self.params.h_low);
        let mut prev = Handle::NULL;
        let mut cur = self.upper.get(anchor.slot()).next_leaf;
        while cur.is_some() {
            work += 1;
            let n = self.node(cur);
            if n.key >= k {
                break;
            }
            prev = cur;
            cur = n.local_right;
        }
        if prev.is_null() {
            // No local leaf in (anchor.key, k): the local predecessor is
            // whatever precedes `cur` (or the tail when the walk exhausted
            // the list).
            prev = if cur.is_some() {
                self.node(cur).local_left
            } else {
                self.leaf_tail
            };
        }
        (cur, prev, work)
    }

    /// Insert a freshly allocated local leaf into the local leaf list and
    /// maintain the `next_leaf` shortcuts (returns work done).
    fn local_leaf_insert(&mut self, leaf: Handle) -> u64 {
        let k = self.node(leaf).key;
        let (succ, prev, mut work) = self.local_successor(k);
        // Splice between prev and succ.
        self.node_mut(prev).local_right = leaf;
        {
            let n = self.node_mut(leaf);
            n.local_left = prev;
            n.local_right = succ;
        }
        if succ.is_some() {
            self.node_mut(succ).local_left = leaf;
        } else {
            self.leaf_tail = leaf;
        }
        // next_leaf fixups: upper leaves U with key ≤ k whose shortcut was
        // `succ` now shortcut to the new leaf. Walk left from the
        // rightmost upper leaf with key < k... including one with key == k
        // cannot exist yet (the key is new), so strict descent suffices.
        let (mut u, w2) = self.upper_descend(k, self.params.h_low);
        work += w2;
        loop {
            work += 1;
            let un = self.upper.get_mut(u.slot());
            if un.next_leaf != succ {
                break;
            }
            un.next_leaf = leaf;
            let left = un.left;
            if left.is_null() {
                break;
            }
            u = left;
        }
        work
    }

    /// Remove a (marked) local leaf from the local leaf list, fixing
    /// `next_leaf` shortcuts; returns work done.
    fn local_leaf_remove(&mut self, leaf: Handle) -> u64 {
        let (k, prev, next) = {
            let n = self.node(leaf);
            (n.key, n.local_left, n.local_right)
        };
        debug_assert!(prev.is_some(), "the −∞ head is never removed");
        self.node_mut(prev).local_right = next;
        if next.is_some() {
            self.node_mut(next).local_left = prev;
        } else {
            self.leaf_tail = prev;
        }
        // Upper leaves shortcutting to this leaf now shortcut to `next`.
        let (mut u, mut work) = self.upper_descend_inclusive(k, self.params.h_low);
        loop {
            work += 1;
            let un = self.upper.get_mut(u.slot());
            if un.next_leaf != leaf {
                break;
            }
            un.next_leaf = next;
            let left = un.left;
            if left.is_null() {
                break;
            }
            u = left;
        }
        work
    }

    /// Recompute `next_leaf` of a (new) upper leaf replica in this module
    /// (post-linking round of batched Upsert).
    fn fix_next_leaf(&mut self, slot: u32) -> u64 {
        let k = self.upper.get(slot).key;
        let (succ, _prev, work) = self.local_successor(k);
        self.upper.get_mut(slot).next_leaf = succ;
        work + 1
    }

    // ------------------------------------------------------------------
    // Search (§4.2)
    // ------------------------------------------------------------------

    #[allow(clippy::too_many_arguments)]
    fn do_search(
        &mut self,
        op: u32,
        key: Key,
        mut at: Handle,
        mode: SearchMode,
        record_path: bool,
        record_upper: bool,
        ctx: &mut ModuleCtx<'_, Task, Reply>,
    ) {
        loop {
            if !self.resolvable(at) {
                ctx.send(
                    at.module(),
                    Task::Search {
                        op,
                        key,
                        at,
                        mode,
                        record_path,
                        record_upper,
                    },
                );
                return;
            }
            ctx.work(1);
            self.touch(at);
            if record_path && (record_upper || !at.is_replicated()) {
                ctx.reply(Reply::PathNode { op, node: at });
            }
            let Some(n) = self.try_node(at) else {
                // Dangling handle (crashed peer's node referenced through a
                // stale pointer): surface the loss, the driver recovers.
                ctx.reply(Reply::Faulted { op });
                return;
            };
            let (at_key, right, right_key, down, level) =
                (n.key, n.right, n.right_key, n.down, n.level);
            if right_key < key {
                at = right;
                continue;
            }
            // Descend (or finish): `at` is the predecessor at `level`.
            if let SearchMode::PredLevels { top } = mode {
                if level >= 1 && level <= top {
                    ctx.reply(Reply::PredAt {
                        op,
                        level,
                        pred: at,
                        succ: right,
                        succ_key: right_key,
                    });
                }
            }
            if level == 0 {
                ctx.reply(Reply::SearchDone {
                    op,
                    pred: at,
                    pred_key: at_key,
                    succ: right,
                    succ_key: right_key,
                });
                return;
            }
            debug_assert!(down.is_some(), "non-leaf without down pointer");
            at = down;
        }
    }

    // ------------------------------------------------------------------
    // Range descent (§5.2)
    // ------------------------------------------------------------------

    fn apply_func(
        &mut self,
        op: u32,
        leaf: Handle,
        func: RangeFunc,
        agg: &mut Agg,
        ctx: &mut ModuleCtx<'_, Task, Reply>,
    ) {
        let (key, old) = {
            let n = self.node(leaf);
            (n.key, n.value)
        };
        match func {
            RangeFunc::Read => ctx.reply(Reply::RangeItem {
                op,
                node: leaf,
                key,
                value: old,
            }),
            RangeFunc::Count | RangeFunc::Sum | RangeFunc::Min | RangeFunc::Max => {
                agg.absorb(old);
            }
            RangeFunc::FetchAdd(d) => {
                self.node_mut(leaf).value = old.wrapping_add(d);
                ctx.reply(Reply::RangeItem {
                    op,
                    node: leaf,
                    key,
                    value: old,
                });
            }
            RangeFunc::AddInPlace(d) => {
                self.node_mut(leaf).value = old.wrapping_add(d);
            }
        }
    }

    fn do_range_descend(
        &mut self,
        op: u32,
        at: Handle,
        lo: Key,
        hi: Key,
        func: RangeFunc,
        ctx: &mut ModuleCtx<'_, Task, Reply>,
    ) {
        // Fragments still to process locally; remote ones are forwarded.
        let mut agg = Agg::new();
        let mut stack: Vec<(Handle, Key)> = vec![(at, hi)];
        while let Some((mut cur, hi_frag)) = stack.pop() {
            loop {
                if !self.resolvable(cur) {
                    ctx.send(
                        cur.module(),
                        Task::RangeDescend {
                            op,
                            at: cur,
                            lo,
                            hi: hi_frag,
                            func,
                        },
                    );
                    break;
                }
                ctx.work(1);
                let Some(n) = self.try_node(cur) else {
                    ctx.reply(Reply::Faulted { op });
                    return;
                };
                let (key, right, right_key, down, level) =
                    (n.key, n.right, n.right_key, n.down, n.level);
                debug_assert!(key <= hi_frag);
                if level == 0 {
                    if key >= lo {
                        self.apply_func(op, cur, func, &mut agg, ctx);
                    }
                } else if right_key > lo {
                    // The child fragment [key, right_key) intersects the
                    // range: descend, clipped to the fragment.
                    let child_hi = if right_key == POS_INF {
                        hi_frag
                    } else {
                        hi_frag.min(right_key - 1)
                    };
                    stack.push((down, child_hi));
                }
                // Continue walking right at this level within the fragment.
                if right.is_some() && right_key <= hi_frag {
                    cur = right;
                } else {
                    break;
                }
            }
        }
        if !func.returns_items() && agg.any() {
            ctx.reply(Reply::RangeAgg {
                op,
                count: agg.count,
                sum: agg.sum,
                min: agg.min,
                max: agg.max,
            });
        }
    }

    fn do_range_broadcast(
        &mut self,
        op: u32,
        lo: Key,
        hi: Key,
        func: RangeFunc,
        ctx: &mut ModuleCtx<'_, Task, Reply>,
    ) {
        assert!(
            self.params.h_low > 0,
            "broadcast ranges need a distributed lower part (h_low > 0)"
        );
        let (mut cur, _prev, work) = self.local_successor(lo);
        ctx.work(work);
        let mut agg = Agg::new();
        while cur.is_some() {
            ctx.work(1);
            let (key, next) = {
                let n = self.node(cur);
                (n.key, n.local_right)
            };
            if key > hi {
                break;
            }
            self.apply_func(op, cur, func, &mut agg, ctx);
            cur = next;
        }
        if !func.returns_items() {
            // Always reply so the CPU can count completion across modules.
            ctx.reply(Reply::RangeAgg {
                op,
                count: agg.count,
                sum: agg.sum,
                min: agg.min,
                max: agg.max,
            });
        }
    }

    // ------------------------------------------------------------------
    // Delete support (§4.4)
    // ------------------------------------------------------------------

    fn do_delete_key(&mut self, op: u32, key: Key, ctx: &mut ModuleCtx<'_, Task, Reply>) {
        ctx.work(1);
        let Some(bits) = self.index.remove(key) else {
            ctx.reply(Reply::DeleteMissing { op });
            return;
        };
        ctx.work(self.index.last_op_work);
        let leaf = Handle::from_bits(bits);
        debug_assert!(self.resolvable(leaf));
        // Mark + gather the leaf record.
        let Some(n) = self.try_node_mut(leaf) else {
            // Index pointed at a vacated slot — only possible after fault
            // damage; report it instead of tearing the simulation down.
            ctx.reply(Reply::Faulted { op });
            return;
        };
        debug_assert!(!n.deleted, "double delete of key {key}");
        n.deleted = true;
        let (chain, value) = (n.chain.clone(), n.value);
        let mut upper_slots = Vec::new();
        if leaf.is_replicated() {
            // h_low = 0 ablation: the leaf itself is a replica — no local
            // leaf list to maintain; all replicas unlink via UnlinkUpper.
            upper_slots.push(leaf.slot());
        } else {
            ctx.work(self.local_leaf_remove(leaf));
        }
        for h in &chain {
            if h.is_replicated() {
                upper_slots.push(h.slot());
            } else {
                ctx.send(h.module(), Task::MarkNode { op, node: *h });
            }
        }
        let n = self.node(leaf);
        ctx.reply(Reply::Marked {
            op,
            node: leaf,
            level: 0,
            key,
            left: n.left,
            right: n.right,
            right_key: n.right_key,
            upper_slots,
            value,
        });
    }

    fn do_mark_node(&mut self, op: u32, node: Handle, ctx: &mut ModuleCtx<'_, Task, Reply>) {
        ctx.work(1);
        let Some(n) = self.try_node_mut(node) else {
            ctx.reply(Reply::Faulted { op });
            return;
        };
        debug_assert!(!n.deleted, "double mark");
        n.deleted = true;
        let (level, key, left, right, right_key, value) =
            (n.level, n.key, n.left, n.right, n.right_key, n.value);
        ctx.reply(Reply::Marked {
            op,
            node,
            level,
            key,
            left,
            right,
            right_key,
            upper_slots: Vec::new(),
            value,
        });
    }

    fn do_unlink_upper(&mut self, slots: &[u32], ctx: &mut ModuleCtx<'_, Task, Reply>) {
        for &slot in slots {
            ctx.work(1);
            let Some(n) = self.upper.get_opt(slot) else {
                // Slot already vacant: a crash or a dropped earlier
                // broadcast left this replica behind. Report, don't splice.
                ctx.reply(Reply::Faulted { op: NO_OP });
                continue;
            };
            let (left, right, right_key) = (n.left, n.right, n.right_key);
            debug_assert!(left.is_replicated(), "upper node with non-replicated left");
            // Check both neighbours before mutating anything so a damaged
            // replica never applies half a splice.
            if self.upper.get_opt(left.slot()).is_none()
                || (right.is_some() && self.upper.get_opt(right.slot()).is_none())
            {
                ctx.reply(Reply::Faulted { op: NO_OP });
                continue;
            }
            {
                let l = self.upper.get_mut(left.slot());
                l.right = right;
                l.right_key = right_key;
            }
            if right.is_some() {
                self.upper.get_mut(right.slot()).left = left;
            }
            self.upper.free(slot);
        }
    }

    /// Rebuild the derived local views — hash index, local leaf list and
    /// `next_leaf` shortcuts — from the (re)installed arenas; the recovery
    /// finaliser after a crash. Returns the local work done.
    fn rebuild_local_views(&mut self) -> u64 {
        let mut work = 1u64;
        self.index =
            DeamortizedMap::new(64, pim_runtime::hashfn::hash2(0x1d, 0, u64::from(self.id)));
        let mut leaves: Vec<(Key, u32)> = self
            .lower
            .iter()
            .filter(|(_, n)| n.level == 0 && !n.deleted)
            .map(|(s, n)| (n.key, s))
            .collect();
        leaves.sort_unstable();
        work += leaves.len() as u64;
        let inf = self.inf_leaf;
        self.node_mut(inf).local_right = Handle::NULL;
        let mut prev = inf;
        for &(k, s) in &leaves {
            let h = Handle::local(self.id, s);
            self.index.insert(k, h.to_bits());
            work += 1 + self.index.last_op_work;
            self.node_mut(prev).local_right = h;
            let n = self.node_mut(h);
            n.local_left = prev;
            n.local_right = Handle::NULL;
            prev = h;
        }
        self.leaf_tail = prev;
        // Every replica at level h_low (the sentinel included) shortcuts to
        // the first local leaf with key ≥ its own key.
        let h_low = self.params.h_low;
        let uppers: Vec<(u32, Key)> = self
            .upper
            .iter()
            .filter(|(_, n)| n.level == h_low)
            .map(|(s, n)| (s, n.key))
            .collect();
        for (slot, key) in uppers {
            let i = leaves.partition_point(|&(k, _)| k < key);
            let succ = leaves
                .get(i)
                .map(|&(_, s)| Handle::local(self.id, s))
                .unwrap_or(Handle::NULL);
            self.upper.get_mut(slot).next_leaf = succ;
            work += 1;
        }
        work
    }
}

impl PimModule for SkipModule {
    type Task = Task;
    type Reply = Reply;

    fn execute(&mut self, task: Task, ctx: &mut ModuleCtx<'_, Task, Reply>) {
        match task {
            Task::Get { op, key } => {
                let bits = self.index.get(key);
                ctx.work(1 + self.index.last_op_work);
                match bits {
                    None => ctx.reply(Reply::GotValue { op, value: None }),
                    Some(bits) => match self.try_node(Handle::from_bits(bits)) {
                        Some(n) => {
                            let value = Some(n.value);
                            ctx.reply(Reply::GotValue { op, value });
                        }
                        None => ctx.reply(Reply::Faulted { op }),
                    },
                }
            }
            Task::Update { op, key, value } => {
                let bits = self.index.get(key);
                ctx.work(1 + self.index.last_op_work);
                match bits {
                    None => ctx.reply(Reply::Updated { op, found: false }),
                    Some(bits) => match self.try_node_mut(Handle::from_bits(bits)) {
                        Some(n) => {
                            n.value = value;
                            ctx.reply(Reply::Updated { op, found: true });
                        }
                        None => ctx.reply(Reply::Faulted { op }),
                    },
                }
            }
            Task::ReadNode { op, node } => {
                ctx.work(1);
                match self.try_node(node) {
                    Some(n) => {
                        let (key, value) = (n.key, n.value);
                        ctx.reply(Reply::NodeValue { op, key, value });
                    }
                    None => ctx.reply(Reply::Faulted { op }),
                }
            }
            Task::Search {
                op,
                key,
                at,
                mode,
                record_path,
                record_upper,
            } => self.do_search(op, key, at, mode, record_path, record_upper, ctx),
            Task::PullNode { at } => {
                ctx.work(1);
                match self.try_node(at) {
                    Some(n) if !n.deleted => ctx.reply(Reply::NodeRec {
                        node: at,
                        key: n.key,
                        right: n.right,
                        right_key: n.right_key,
                        down: n.down,
                        level: n.level,
                    }),
                    _ => ctx.reply(Reply::Faulted { op: NO_OP }),
                }
            }
            Task::AllocLower {
                op,
                key,
                value,
                level,
            } => {
                ctx.work(1);
                let slot = self.lower.alloc(Node::new(key, value, level));
                let handle = Handle::local(self.id, slot);
                if level == 0 {
                    self.index.insert(key, handle.to_bits());
                    ctx.work(self.index.last_op_work);
                    ctx.work(self.local_leaf_insert(handle));
                }
                ctx.reply(Reply::Alloced {
                    op,
                    level,
                    node: handle,
                });
            }
            Task::AllocUpper {
                slot,
                key,
                level,
                value,
            } => {
                ctx.work(1);
                if self.upper.contains(slot) {
                    // Replica divergence (a crash missed an earlier unlink
                    // broadcast): refuse and report rather than clobber.
                    ctx.reply(Reply::Faulted { op: NO_OP });
                    return;
                }
                self.upper.insert_at(slot, Node::new(key, value, level));
                // h_low = 0 ablation: replicated leaves are indexed by the
                // module the key hashes to (point ops only; documented).
                if level == 0
                    && pim_runtime::hashfn::module_of(self.params.seed, key, 0, self.params.p)
                        == self.id
                {
                    self.index.insert(key, Handle::replicated(slot).to_bits());
                    ctx.work(self.index.last_op_work);
                }
            }
            Task::WireVertical { node, up, down } => {
                ctx.work(1);
                match self.try_node_mut(node) {
                    Some(n) => {
                        if up.is_some() {
                            n.up = up;
                        }
                        if down.is_some() {
                            n.down = down;
                        }
                    }
                    None => ctx.reply(Reply::Faulted { op: NO_OP }),
                }
            }
            Task::FixNextLeaf { slot } => {
                if self.upper.contains(slot) {
                    let w = self.fix_next_leaf(slot);
                    ctx.work(w);
                } else {
                    ctx.work(1);
                    ctx.reply(Reply::Faulted { op: NO_OP });
                }
            }
            Task::SetLeafChain { leaf, chain } => {
                ctx.work(1);
                match self.try_node_mut(leaf) {
                    Some(n) => n.chain = chain,
                    None => ctx.reply(Reply::Faulted { op: NO_OP }),
                }
            }
            Task::WriteRight { node, to, to_key } => {
                ctx.work(1);
                match self.try_node_mut(node) {
                    Some(n) => {
                        n.right = to;
                        n.right_key = to_key;
                    }
                    None => ctx.reply(Reply::Faulted { op: NO_OP }),
                }
            }
            Task::WriteLeft { node, to } => {
                ctx.work(1);
                match self.try_node_mut(node) {
                    Some(n) => n.left = to,
                    None => ctx.reply(Reply::Faulted { op: NO_OP }),
                }
            }
            Task::WriteValue { node, value } => {
                ctx.work(1);
                match self.try_node_mut(node) {
                    Some(n) => n.value = value,
                    None => ctx.reply(Reply::Faulted { op: NO_OP }),
                }
            }
            Task::DeleteKey { op, key } => self.do_delete_key(op, key, ctx),
            Task::MarkNode { op, node } => self.do_mark_node(op, node, ctx),
            Task::UnlinkUpper { slots } => self.do_unlink_upper(&slots, ctx),
            Task::FreeNode { node } => {
                ctx.work(1);
                debug_assert!(
                    !node.is_replicated(),
                    "upper nodes are freed via UnlinkUpper"
                );
                debug_assert_eq!(node.module(), self.id);
                if self.lower.contains(node.slot()) {
                    self.lower.free(node.slot());
                } else {
                    ctx.reply(Reply::Faulted { op: NO_OP });
                }
            }
            Task::RangeBroadcast { op, lo, hi, func } => {
                self.do_range_broadcast(op, lo, hi, func, ctx)
            }
            Task::RangeDescend {
                op,
                at,
                lo,
                hi,
                func,
            } => self.do_range_descend(op, at, lo, hi, func, ctx),
            Task::InstallUpper { slot, node } => {
                ctx.work(1);
                self.upper.install(slot, node);
            }
            Task::InstallLower { slot, node } => {
                ctx.work(1);
                self.lower.install(slot, node);
            }
            Task::RecoverLocal => {
                let w = self.rebuild_local_views();
                ctx.work(w);
                ctx.reply(Reply::Recovered { module: self.id });
            }
        }
    }

    fn local_words(&self) -> u64 {
        self.upper.words() + self.lower.words() + self.index.words()
    }

    fn on_crash(&mut self) {
        // Local memory is volatile: restart cold, exactly as constructed
        // (sentinel tower re-materialised, everything else gone).
        *self = SkipModule::new(self.id, self.params.clone());
    }
}
