//! Durable persistence: a checksummed write-ahead log plus compacted
//! snapshots, with crash recovery back into a [`PimSkipList`].
//!
//! The simulated PIM machine is volatile — what survives a process crash
//! is this module's on-disk state, in one directory:
//!
//! * `wal-<seq>.log` — append-only segments of checksummed frames, one
//!   frame per *committed coalescible run* of [`crate::Op`]s (exactly the
//!   unit [`PimSkipList::try_execute`] commits);
//! * `snapshot-<seq>.snap` — the full key/value contents at stream
//!   position `seq`, written atomically;
//! * `MANIFEST` — which snapshot is live and which segments exist.
//!
//! ## Recovery contract (two tiers)
//!
//! **Tier 1 — WAL-only replay is bit-identical.** When recovery starts
//! from an empty base (no snapshot, or a snapshot taken at a
//! [`PimSkipList::bulk_load`] boundary) and replays every frame through
//! [`PimSkipList::execute`], the recovered structure is *bit-identical*
//! to an uninterrupted process: same tower heights, same handles, same
//! [`pim_runtime::Metrics`], same replies to any subsequent stream. This
//! holds because the structure is a pure function of `(Config, committed
//! op runs)` and frames are exactly the committed runs.
//!
//! **Tier 2 — snapshot-compacted recovery is logically identical and
//! deterministic.** Recovery through a mid-stream snapshot rebuilds the
//! contents via [`PimSkipList::bulk_load`] and replays the WAL suffix:
//! contents, `len`, `validate()` and the *logical* replies of any
//! subsequent stream all match the oracle, and recovering twice from the
//! same directory is byte-identical — but tower heights (and therefore
//! raw metrics) may differ from the uninterrupted process, because the
//! random draws that shaped the original towers are not replayed.
//!
//! A torn tail (the frame being appended when the process died) is
//! truncated at the last valid frame; corruption that loses *committed*
//! history (an interior frame, a live snapshot whose WAL was compacted
//! away) is a hard [`PimError::Corruption`] carrying file, offset and
//! both checksums.

pub(crate) mod codec;
pub(crate) mod manifest;
pub(crate) mod snapshot;
pub(crate) mod wal;

use std::path::{Path, PathBuf};

use crate::config::{Config, Key, Value};
use crate::error::{PimError, PimResult};
use crate::list::PimSkipList;
use crate::op::Op;

use manifest::Manifest;
use snapshot::snapshot_name;
use wal::{segment_name, WalWriter};

/// When the WAL is fsynced relative to op commits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every committed run — every acknowledged op is durable.
    /// Safest, slowest.
    EveryFrame,
    /// Fsync once at least this many ops are unsynced (group commit).
    EveryOps(u64),
    /// Only on explicit [`PimSkipList::durable_sync`] (and at snapshots) —
    /// a front-end such as the `pim-service` tick clock drives cadence.
    Manual,
}

/// Configuration of the durability layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityPolicy {
    /// Group-commit cadence.
    pub fsync: FsyncPolicy,
    /// Write a compacted snapshot (and drop covered WAL segments) every
    /// this many ops; `None` disables automatic snapshots
    /// ([`PimSkipList::snapshot_now`] still works).
    pub snapshot_every: Option<u64>,
    /// How many snapshots to retain (the WAL is only compacted up to the
    /// *oldest* retained one, so an older snapshot stays usable if the
    /// newest is ever damaged). Clamped to at least 1.
    pub keep_snapshots: usize,
}

impl Default for DurabilityPolicy {
    fn default() -> Self {
        DurabilityPolicy {
            fsync: FsyncPolicy::EveryFrame,
            snapshot_every: None,
            keep_snapshots: 2,
        }
    }
}

impl DurabilityPolicy {
    /// Set the fsync cadence.
    pub fn with_fsync(mut self, fsync: FsyncPolicy) -> Self {
        self.fsync = fsync;
        self
    }

    /// Snapshot (and compact) every `ops` committed operations.
    pub fn with_snapshot_every(mut self, ops: u64) -> Self {
        self.snapshot_every = Some(ops);
        self
    }

    /// Retain `n` snapshots (min 1).
    pub fn with_keep_snapshots(mut self, n: usize) -> Self {
        self.keep_snapshots = n;
        self
    }
}

/// What [`PimSkipList::recover_from_dir`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Stream position of the snapshot recovery started from (`None`:
    /// replayed the full WAL from an empty structure — tier-1
    /// bit-identical recovery).
    pub snapshot_seq: Option<u64>,
    /// WAL frames replayed after the base.
    pub frames_replayed: u64,
    /// Operations replayed after the base.
    pub ops_replayed: u64,
    /// Torn-tail bytes truncated from the last segment (0 on a clean
    /// shutdown).
    pub truncated_bytes: u64,
    /// The recovered structure's next op stream index.
    pub next_seq: u64,
    /// Whether a valid `MANIFEST` drove recovery (`false`: directory-scan
    /// fallback).
    pub used_manifest: bool,
}

/// Running I/O counters of the durability layer, for the telemetry
/// registry and dashboards. All monotonic over the life of one
/// `Durability` attachment (recovery re-attaches with fresh counters —
/// the replayed history is the `RecoveryReport`'s story, not this one's).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurableStats {
    /// WAL frames appended (one per committed coalescible run).
    pub wal_frames: u64,
    /// WAL payload bytes appended.
    pub wal_bytes: u64,
    /// fsync calls actually issued (deduplicated syncs don't count).
    pub fsyncs: u64,
    /// Snapshots written (automatic and manual).
    pub snapshots: u64,
    /// WAL segments deleted by snapshot compaction.
    pub compacted_segments: u64,
}

/// Live durability state attached to a [`PimSkipList`].
pub(crate) struct Durability {
    dir: PathBuf,
    policy: DurabilityPolicy,
    config_fp: u64,
    /// Next op stream index (== ops committed since the beginning).
    pub(crate) seq: u64,
    /// Ops known durable (covered by the last fsync).
    pub(crate) synced_seq: u64,
    unsynced_ops: u64,
    last_snapshot_seq: u64,
    /// Retained snapshot seqs, newest first.
    snapshots: Vec<u64>,
    /// Live segment start seqs, ascending.
    segments: Vec<u64>,
    writer: WalWriter,
    pub(crate) stats: DurableStats,
}

impl Durability {
    /// Initialise an empty durable directory (refusing one that already
    /// holds state — that is [`PimSkipList::recover_from_dir`]'s job).
    fn open_fresh(dir: &Path, policy: DurabilityPolicy, cfg: &Config) -> PimResult<Self> {
        std::fs::create_dir_all(dir).map_err(|e| PimError::io("durable_open", dir, &e))?;
        let fp = codec::config_fingerprint(cfg);
        let existing = manifest::scan_dir(dir)?;
        if dir.join(manifest::MANIFEST_NAME).exists()
            || !existing.snapshots.is_empty()
            || !existing.segments.is_empty()
        {
            return Err(PimError::InvalidArgument {
                op: "enable_durability",
                reason: format!(
                    "{} already holds durable state; use PimSkipList::recover_from_dir",
                    dir.display()
                ),
            });
        }
        let writer = WalWriter::create(dir, fp, 0)?;
        let d = Durability {
            dir: dir.to_path_buf(),
            policy,
            config_fp: fp,
            seq: 0,
            synced_seq: 0,
            unsynced_ops: 0,
            last_snapshot_seq: 0,
            snapshots: Vec::new(),
            segments: vec![0],
            writer,
            stats: DurableStats::default(),
        };
        d.write_manifest()?;
        Ok(d)
    }

    fn write_manifest(&self) -> PimResult<()> {
        manifest::write_manifest(
            &self.dir,
            self.config_fp,
            &Manifest {
                snapshots: self.snapshots.clone(),
                segments: self.segments.clone(),
            },
        )
    }

    /// Append one committed run and apply the fsync policy.
    fn append_run(&mut self, ops: &[Op]) -> PimResult<()> {
        let bytes_before = self.writer.bytes;
        self.writer.append(self.seq, ops)?;
        self.stats.wal_frames += 1;
        self.stats.wal_bytes += self.writer.bytes - bytes_before;
        self.seq += ops.len() as u64;
        self.unsynced_ops += ops.len() as u64;
        match self.policy.fsync {
            FsyncPolicy::EveryFrame => self.sync(),
            FsyncPolicy::EveryOps(n) => {
                if self.unsynced_ops >= n.max(1) {
                    self.sync()
                } else {
                    Ok(())
                }
            }
            FsyncPolicy::Manual => Ok(()),
        }
    }

    /// Fsync the WAL: every committed op is durable when this returns.
    fn sync(&mut self) -> PimResult<()> {
        if self.synced_seq < self.seq {
            self.writer.sync()?;
            self.stats.fsyncs += 1;
            self.synced_seq = self.seq;
            self.unsynced_ops = 0;
        }
        Ok(())
    }

    /// Is an automatic snapshot due?
    fn wants_snapshot(&self) -> bool {
        self.policy
            .snapshot_every
            .is_some_and(|n| self.seq - self.last_snapshot_seq >= n.max(1))
    }

    /// Write a snapshot of `items` at the current stream position, rotate
    /// to a fresh segment, update the manifest, and drop snapshots/segments
    /// no retained snapshot needs. Crash-ordering: the manifest is
    /// rewritten *before* any file is deleted, and the fresh segment is
    /// created *before* the manifest names it — every intermediate state
    /// recovers.
    fn snapshot(&mut self, items: &[(Key, Value)]) -> PimResult<()> {
        self.sync()?;
        snapshot::write_snapshot(&self.dir, self.config_fp, self.seq, items)?;
        if self.writer.start_seq != self.seq {
            self.writer = WalWriter::create(&self.dir, self.config_fp, self.seq)?;
            self.segments.push(self.seq);
            self.segments.sort_unstable();
        }
        self.snapshots.insert(0, self.seq);
        self.snapshots.dedup();
        let keep = self.policy.keep_snapshots.max(1).min(self.snapshots.len());
        let dropped_snaps = self.snapshots.split_off(keep);
        let min_keep = *self.snapshots.last().expect("at least the new snapshot");
        let (keep_segs, dropped_segs): (Vec<u64>, Vec<u64>) =
            self.segments.iter().copied().partition(|&s| s >= min_keep);
        self.segments = keep_segs;
        self.write_manifest()?;
        for s in dropped_snaps {
            let _ = std::fs::remove_file(self.dir.join(snapshot_name(s)));
        }
        self.stats.snapshots += 1;
        self.stats.compacted_segments += dropped_segs.len() as u64;
        for s in dropped_segs {
            let _ = std::fs::remove_file(self.dir.join(segment_name(s)));
        }
        self.last_snapshot_seq = self.seq;
        Ok(())
    }
}

impl PimSkipList {
    /// Turn on durable persistence into `dir` (which must not already hold
    /// durable state — restart from existing state with
    /// [`PimSkipList::recover_from_dir`]). If the structure is non-empty,
    /// an initial snapshot of its current contents is written immediately,
    /// so the directory alone is always sufficient to recover.
    pub fn enable_durability(
        &mut self,
        dir: impl AsRef<Path>,
        policy: DurabilityPolicy,
    ) -> PimResult<()> {
        if self.durable.is_some() {
            return Err(PimError::InvalidArgument {
                op: "enable_durability",
                reason: "durability is already enabled".into(),
            });
        }
        let mut d = Durability::open_fresh(dir.as_ref(), policy, &self.cfg)?;
        if !self.is_empty() {
            d.snapshot(&self.journal.items_sorted())?;
        }
        self.durable = Some(Box::new(d));
        Ok(())
    }

    /// Is durable persistence enabled?
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Next op stream index of the durability layer (`None` when not
    /// durable).
    pub fn durable_seq(&self) -> Option<u64> {
        self.durable.as_deref().map(|d| d.seq)
    }

    /// Ops covered by the last fsync (`None` when not durable). Equal to
    /// [`PimSkipList::durable_seq`] exactly when nothing is pending.
    pub fn durable_synced_seq(&self) -> Option<u64> {
        self.durable.as_deref().map(|d| d.synced_seq)
    }

    /// Running I/O counters of the durability layer (`None` when not
    /// durable).
    pub fn durable_stats(&self) -> Option<DurableStats> {
        self.durable.as_deref().map(|d| d.stats)
    }

    /// Fsync pending WAL frames now (no-op without durability — callers
    /// like the service tier can invoke it unconditionally).
    pub fn durable_sync(&mut self) -> PimResult<()> {
        match self.durable.as_deref_mut() {
            Some(d) => d.sync(),
            None => Ok(()),
        }
    }

    /// Write a compacted snapshot of the current contents now and drop WAL
    /// segments no retained snapshot needs.
    pub fn snapshot_now(&mut self) -> PimResult<()> {
        let Some(d) = self.durable.as_deref_mut() else {
            return Err(PimError::InvalidArgument {
                op: "snapshot_now",
                reason: "durability is not enabled".into(),
            });
        };
        let items = self.journal.items_sorted();
        d.snapshot(&items)
    }

    /// WAL hook called by [`PimSkipList::try_execute`] for each committed
    /// run (no-op without durability).
    pub(crate) fn durable_record_run(&mut self, run: &[Op]) -> PimResult<()> {
        let Some(d) = self.durable.as_deref_mut() else {
            return Ok(());
        };
        d.append_run(run)?;
        if d.wants_snapshot() {
            let items = self.journal.items_sorted();
            d.snapshot(&items)?;
        }
        Ok(())
    }

    /// Rebuild a structure from a durable directory: load the newest valid
    /// snapshot (falling back to an older retained one, or to full-WAL
    /// replay, if it is damaged), replay every complete WAL frame after it
    /// through the normal [`PimSkipList::execute`] path, truncate any torn
    /// tail at the last valid frame, and re-attach the durability layer so
    /// the recovered structure continues appending where the crashed
    /// process stopped. See the module docs for the two-tier identity
    /// contract.
    pub fn recover_from_dir(
        cfg: Config,
        dir: impl AsRef<Path>,
        policy: DurabilityPolicy,
    ) -> PimResult<(PimSkipList, RecoveryReport)> {
        let dir = dir.as_ref();
        let fp = codec::config_fingerprint(&cfg);
        let loaded = manifest::read_manifest(dir, fp)?;
        let used_manifest = loaded.is_some();
        let m = match loaded {
            Some(m) => m,
            None => manifest::scan_dir(dir)?,
        };
        let mut snaps = m.snapshots;
        snaps.sort_unstable_by(|a, b| b.cmp(a));
        snaps.dedup();
        let mut segs = m.segments;
        segs.sort_unstable();
        segs.dedup();
        if snaps.is_empty() && segs.is_empty() {
            return Err(PimError::InvalidArgument {
                op: "recover_from_dir",
                reason: format!("no durable state in {}", dir.display()),
            });
        }

        // A base at seq `s` is usable when the segment chain resumes
        // exactly at `s` — or when every segment predates it (a snapshot
        // taken at the very tip, crash before the rotation landed).
        let covered = |segs: &[u64], s: u64| segs.contains(&s) || segs.iter().all(|&x| x < s);

        // Newest usable snapshot first; full-WAL replay as the fallback.
        let mut base: Option<(u64, codec::Items)> = None;
        let mut first_err: Option<PimError> = None;
        for &s in &snaps {
            if !covered(&segs, s) {
                continue;
            }
            match snapshot::read_snapshot(&dir.join(snapshot_name(s)), fp) {
                Ok((seq, items)) if seq == s => {
                    base = Some((s, items));
                    break;
                }
                Ok((seq, _)) => {
                    first_err.get_or_insert_with(|| {
                        codec::corrupt(
                            &dir.join(snapshot_name(s)),
                            20,
                            s as u32,
                            seq as u32,
                            "snapshot sequence",
                        )
                    });
                }
                Err(e @ PimError::InvalidArgument { .. }) => return Err(e),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        let (base_seq, base_items) = match base {
            Some(b) => b,
            None if covered(&segs, 0) && segs.contains(&0) => (0, Vec::new()),
            None => {
                return Err(first_err.unwrap_or_else(|| PimError::InvalidArgument {
                    op: "recover_from_dir",
                    reason: format!(
                        "no usable snapshot and no wal chain from op 0 in {}",
                        dir.display()
                    ),
                }))
            }
        };

        // Scan the segment chain from the base, enforcing continuity; a
        // torn tail is legal only in the final segment.
        let replay_segs: Vec<u64> = segs.iter().copied().filter(|&s| s >= base_seq).collect();
        let mut frames = Vec::new();
        let mut expected = base_seq;
        let mut truncated_bytes = 0u64;
        let mut last_seg: Option<(u64, u64)> = None;
        for (i, &s) in replay_segs.iter().enumerate() {
            let path = dir.join(segment_name(s));
            let sr = wal::read_segment(&path, fp)?;
            if sr.start_seq != s || sr.start_seq != expected {
                return Err(PimError::InvalidArgument {
                    op: "recover_from_dir",
                    reason: format!(
                        "wal chain broken at {}: segment starts at op {} but op {} was next",
                        path.display(),
                        sr.start_seq,
                        expected
                    ),
                });
            }
            let is_last = i + 1 == replay_segs.len();
            if let Some(t) = sr.torn {
                if !is_last {
                    return Err(codec::corrupt(
                        &path,
                        t.offset,
                        t.expected,
                        t.found,
                        "interior wal frame",
                    ));
                }
                let file_len = std::fs::metadata(&path)
                    .map_err(|e| PimError::io("wal_read", &path, &e))?
                    .len();
                truncated_bytes = file_len - sr.valid_len;
            }
            for f in &sr.frames {
                expected = f.seq + f.ops.len() as u64;
            }
            last_seg = Some((s, sr.valid_len));
            frames.extend(sr.frames);
        }
        let next_seq = expected;

        // Rebuild: bulk-load the snapshot contents (if any), then replay
        // every frame through the normal execute path.
        let mut list = PimSkipList::new(cfg);
        if !base_items.is_empty() {
            list.try_bulk_load(&base_items)?;
        }
        let mut ops_replayed = 0u64;
        let frames_replayed = frames.len() as u64;
        for f in &frames {
            ops_replayed += f.ops.len() as u64;
            list.try_execute(&f.ops)?;
        }

        // Re-attach the durability layer at the recovered position. The
        // reopen physically truncates any torn tail.
        let mut segments = segs;
        let writer = match last_seg {
            Some((s, valid_len)) => WalWriter::reopen(dir, s, valid_len)?,
            None => {
                let w = WalWriter::create(dir, fp, next_seq)?;
                segments.push(next_seq);
                segments.sort_unstable();
                w
            }
        };
        let d = Durability {
            dir: dir.to_path_buf(),
            policy,
            config_fp: fp,
            seq: next_seq,
            synced_seq: next_seq,
            unsynced_ops: 0,
            last_snapshot_seq: base_seq,
            snapshots: snaps,
            segments,
            writer,
            stats: DurableStats::default(),
        };
        d.write_manifest()?;
        let report = RecoveryReport {
            snapshot_seq: if base_items.is_empty() && base_seq == 0 {
                None
            } else {
                Some(base_seq)
            },
            frames_replayed,
            ops_replayed,
            truncated_bytes,
            next_seq,
            used_manifest,
        };
        list.durable = Some(Box::new(d));
        Ok((list, report))
    }
}

/// Fresh per-test scratch directory under the system temp dir.
#[cfg(test)]
pub(crate) fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pim-durable-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;

    fn cfg() -> Config {
        Config::new(4, 1 << 10, 42)
    }

    fn ops(lo: i64, n: i64) -> Vec<Op> {
        (lo..lo + n)
            .map(|k| Op::Upsert {
                key: k * 3,
                value: (k * 7) as u64,
            })
            .collect()
    }

    #[test]
    fn wal_only_recovery_is_bit_identical() {
        let dir = test_dir("mod-bitident");
        let mut live = PimSkipList::new(cfg());
        live.enable_durability(&dir, DurabilityPolicy::default())
            .unwrap();
        let mut oracle = PimSkipList::new(cfg());
        for round in 0..4 {
            let batch = ops(round * 10, 10);
            let a = live.execute(&batch);
            let b = oracle.execute(&batch);
            assert_eq!(a, b);
        }
        drop(live);

        let (mut rec, report) =
            PimSkipList::recover_from_dir(cfg(), &dir, DurabilityPolicy::default()).unwrap();
        assert_eq!(report.snapshot_seq, None, "tier-1 recovery path");
        assert_eq!(report.ops_replayed, 40);
        assert_eq!(report.truncated_bytes, 0);
        assert!(report.used_manifest);
        // Bit-identity: metrics, contents, and future replies all match.
        assert_eq!(rec.metrics(), oracle.metrics());
        assert_eq!(rec.collect_items(), oracle.collect_items());
        rec.validate().unwrap();
        let probe = ops(-5, 20)
            .into_iter()
            .chain((0..30).map(|k| Op::Get { key: k }))
            .collect::<Vec<_>>();
        assert_eq!(rec.execute(&probe), oracle.execute(&probe));
        assert_eq!(rec.metrics(), oracle.metrics());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_compaction_drops_covered_segments() {
        let dir = test_dir("mod-compact");
        let policy = DurabilityPolicy::default()
            .with_snapshot_every(8)
            .with_keep_snapshots(2);
        let mut live = PimSkipList::new(cfg());
        live.enable_durability(&dir, policy).unwrap();
        for round in 0..6 {
            live.execute(&ops(round * 8, 8));
        }
        drop(live);
        let m = manifest::read_manifest(&dir, codec::config_fingerprint(&cfg()))
            .unwrap()
            .expect("manifest present");
        assert_eq!(m.snapshots.len(), 2, "keep_snapshots honoured");
        let oldest = *m.snapshots.last().unwrap();
        assert!(m.segments.iter().all(|&s| s >= oldest));
        // Dropped segments are really gone from disk.
        let files = manifest::scan_dir(&dir).unwrap();
        assert_eq!(files.segments, m.segments);
        assert_eq!(files.snapshots, m.snapshots);

        // Recovery lands on the newest snapshot and replays the suffix.
        let (rec, report) = PimSkipList::recover_from_dir(cfg(), &dir, policy).unwrap();
        assert_eq!(report.snapshot_seq, Some(m.snapshots[0]));
        assert_eq!(report.next_seq, 48);
        rec.validate().unwrap();
        assert_eq!(rec.len(), 48);
        // Logical equality with a fresh oracle run.
        let mut oracle = PimSkipList::new(cfg());
        for round in 0..6 {
            oracle.execute(&ops(round * 8, 8));
        }
        assert_eq!(rec.collect_items(), oracle.collect_items());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn double_recovery_is_deterministic() {
        let dir = test_dir("mod-doublerec");
        let policy = DurabilityPolicy::default().with_snapshot_every(10);
        let mut live = PimSkipList::new(cfg());
        live.enable_durability(&dir, policy).unwrap();
        for round in 0..3 {
            live.execute(&ops(round * 12, 12));
        }
        drop(live);
        let (mut a, ra) = PimSkipList::recover_from_dir(cfg(), &dir, policy).unwrap();
        // Recover again from the directory state the first recovery left.
        let (mut b, rb) = PimSkipList::recover_from_dir(cfg(), &dir, policy).unwrap();
        assert_eq!(ra.next_seq, rb.next_seq);
        assert_eq!(a.collect_items(), b.collect_items());
        assert_eq!(a.metrics(), b.metrics());
        let probe: Vec<Op> = (0..40).map(|k| Op::Get { key: k }).collect();
        assert_eq!(a.execute(&probe), b.execute(&probe));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bulk_load_boundary_snapshot_restores_bit_identity() {
        let dir = test_dir("mod-bulkload");
        let pairs: Vec<(Key, Value)> = (0..200).map(|k| (k * 2, (k * 5) as u64)).collect();
        let mut live = PimSkipList::new(cfg());
        live.enable_durability(&dir, DurabilityPolicy::default())
            .unwrap();
        live.try_bulk_load(&pairs).unwrap();
        let tail = ops(200, 15);
        live.execute(&tail);
        drop(live);

        let mut oracle = PimSkipList::new(cfg());
        oracle.try_bulk_load(&pairs).unwrap();
        oracle.execute(&tail);

        let (mut rec, report) =
            PimSkipList::recover_from_dir(cfg(), &dir, DurabilityPolicy::default()).unwrap();
        // The bulk load snapshotted at seq 0, so recovery re-runs the
        // identical bulk load: full bit-identity, metrics included.
        assert_eq!(report.snapshot_seq, Some(0));
        assert_eq!(rec.metrics(), oracle.metrics());
        assert_eq!(rec.collect_items(), oracle.collect_items());
        rec.validate().unwrap();
        let probe: Vec<Op> = (0..100).map(|k| Op::Get { key: k * 4 }).collect();
        assert_eq!(rec.execute(&probe), oracle.execute(&probe));
        assert_eq!(rec.metrics(), oracle.metrics());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn refuses_wrong_config_and_occupied_dir() {
        let dir = test_dir("mod-refuse");
        let mut live = PimSkipList::new(cfg());
        live.enable_durability(&dir, DurabilityPolicy::default())
            .unwrap();
        live.execute(&ops(0, 5));
        drop(live);
        // Different p: refused before any replay.
        let other = Config::new(8, 1 << 10, 42);
        assert!(matches!(
            PimSkipList::recover_from_dir(other, &dir, DurabilityPolicy::default()),
            Err(PimError::InvalidArgument { .. })
        ));
        // enable_durability on a dir with state: refused.
        let mut fresh = PimSkipList::new(cfg());
        assert!(matches!(
            fresh.enable_durability(&dir, DurabilityPolicy::default()),
            Err(PimError::InvalidArgument { .. })
        ));
        // Empty dir: nothing to recover.
        let empty = test_dir("mod-refuse-empty");
        assert!(matches!(
            PimSkipList::recover_from_dir(cfg(), &empty, DurabilityPolicy::default()),
            Err(PimError::InvalidArgument { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&empty).ok();
    }

    #[test]
    fn damaged_newest_snapshot_falls_back_to_older() {
        let dir = test_dir("mod-snapfallback");
        let policy = DurabilityPolicy::default()
            .with_snapshot_every(10)
            .with_keep_snapshots(2);
        let mut live = PimSkipList::new(cfg());
        live.enable_durability(&dir, policy).unwrap();
        for round in 0..3 {
            live.execute(&ops(round * 10, 10));
        }
        drop(live);
        let m = manifest::read_manifest(&dir, codec::config_fingerprint(&cfg()))
            .unwrap()
            .unwrap();
        assert!(m.snapshots.len() >= 2);
        // Flip a byte in the newest snapshot.
        let newest = dir.join(snapshot_name(m.snapshots[0]));
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, &bytes).unwrap();

        let (rec, report) = PimSkipList::recover_from_dir(cfg(), &dir, policy).unwrap();
        assert_eq!(report.snapshot_seq, Some(m.snapshots[1]));
        rec.validate().unwrap();
        assert_eq!(rec.len(), 30);
        let mut oracle = PimSkipList::new(cfg());
        for round in 0..3 {
            oracle.execute(&ops(round * 10, 10));
        }
        assert_eq!(rec.collect_items(), oracle.collect_items());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manual_fsync_tracks_synced_seq() {
        let dir = test_dir("mod-manual");
        let policy = DurabilityPolicy::default().with_fsync(FsyncPolicy::Manual);
        let mut live = PimSkipList::new(cfg());
        live.enable_durability(&dir, policy).unwrap();
        live.execute(&ops(0, 7));
        assert_eq!(live.durable_seq(), Some(7));
        assert_eq!(live.durable_synced_seq(), Some(0));
        live.durable_sync().unwrap();
        assert_eq!(live.durable_synced_seq(), Some(7));
        // EveryOps groups commits.
        let dir2 = test_dir("mod-everyops");
        let mut grouped = PimSkipList::new(cfg());
        grouped
            .enable_durability(
                &dir2,
                DurabilityPolicy::default().with_fsync(FsyncPolicy::EveryOps(16)),
            )
            .unwrap();
        grouped.execute(&ops(0, 7));
        assert_eq!(grouped.durable_synced_seq(), Some(0));
        grouped.execute(&ops(7, 9));
        assert_eq!(grouped.durable_synced_seq(), Some(16));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&dir2).ok();
    }
}
