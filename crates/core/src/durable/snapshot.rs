//! Compacted snapshots: the full key/value contents at one op-stream
//! position, written atomically.
//!
//! A snapshot file is
//!
//! ```text
//! [magic "PIMSNAP1"] [version: u32] [config_fp: u64] [op_seq: u64]
//! [count: u64] count × ([key: i64] [value: u64]) [crc: u32]
//! ```
//!
//! with `crc` the CRC-32 of everything before it. The file is written to a
//! `.tmp` sibling, fsynced, renamed into place, and the directory fsynced —
//! so a snapshot either exists completely or not at all; a crash mid-write
//! leaves only a `.tmp` that recovery ignores.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use pim_runtime::crc::crc32;

use crate::durable::codec::{self, Items, Reader};
use crate::durable::wal::sync_dir;
use crate::error::{PimError, PimResult};

pub(crate) const SNAP_MAGIC: &[u8; 8] = b"PIMSNAP1";
pub(crate) const SNAP_VERSION: u32 = 1;

/// File name of the snapshot covering ops `[0, seq)`.
pub(crate) fn snapshot_name(seq: u64) -> String {
    format!("snapshot-{seq:016x}.snap")
}

/// Parse a `snapshot-<hex>.snap` name back to its op sequence.
pub(crate) fn parse_snapshot_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snapshot-")?.strip_suffix(".snap")?;
    u64::from_str_radix(hex, 16).ok()
}

/// Write the snapshot for stream position `seq` atomically; returns its
/// final path. Durable (file and directory fsynced) when this returns.
pub(crate) fn write_snapshot(
    dir: &Path,
    config_fp: u64,
    seq: u64,
    items: &[(crate::config::Key, crate::config::Value)],
) -> PimResult<PathBuf> {
    let mut bytes = Vec::with_capacity(36 + items.len() * 16);
    bytes.extend_from_slice(SNAP_MAGIC);
    codec::put_u32(&mut bytes, SNAP_VERSION);
    codec::put_u64(&mut bytes, config_fp);
    codec::put_u64(&mut bytes, seq);
    codec::put_u64(&mut bytes, items.len() as u64);
    for &(k, v) in items {
        codec::put_i64(&mut bytes, k);
        codec::put_u64(&mut bytes, v);
    }
    let crc = crc32(&bytes);
    codec::put_u32(&mut bytes, crc);

    let path = dir.join(snapshot_name(seq));
    let tmp = dir.join(format!("{}.tmp", snapshot_name(seq)));
    let mut f = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&tmp)
        .map_err(|e| PimError::io("snapshot_write", &tmp, &e))?;
    f.write_all(&bytes)
        .map_err(|e| PimError::io("snapshot_write", &tmp, &e))?;
    f.sync_all()
        .map_err(|e| PimError::io("snapshot_sync", &tmp, &e))?;
    drop(f);
    std::fs::rename(&tmp, &path).map_err(|e| PimError::io("snapshot_rename", &path, &e))?;
    sync_dir(dir)?;
    Ok(path)
}

/// Read and fully verify one snapshot file; returns `(op_seq, items)`.
pub(crate) fn read_snapshot(path: &Path, config_fp: u64) -> PimResult<(u64, Items)> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| PimError::io("snapshot_read", path, &e))?;
    if bytes.len() < 40 {
        return Err(codec::corrupt(path, 0, 0, 0, "snapshot"));
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let claimed = u32::from_le_bytes(tail.try_into().unwrap());
    let found = crc32(body);
    if found != claimed {
        return Err(codec::corrupt(path, 0, claimed, found, "snapshot"));
    }
    if &body[..8] != SNAP_MAGIC {
        return Err(codec::corrupt(path, 0, claimed, found, "snapshot magic"));
    }
    let mut r = Reader::new(&body[8..]);
    let (version, fp, seq, count) = match (r.u32(), r.u64(), r.u64(), r.u64()) {
        (Some(a), Some(b), Some(c), Some(d)) => (a, b, c, d),
        _ => return Err(codec::corrupt(path, 8, claimed, found, "snapshot header")),
    };
    if version != SNAP_VERSION {
        return Err(codec::corrupt(
            path,
            8,
            SNAP_VERSION,
            version,
            "snapshot version",
        ));
    }
    if fp != config_fp {
        return Err(PimError::InvalidArgument {
            op: "recover_from_dir",
            reason: format!(
                "{} was written under a different configuration \
                 (fingerprint {fp:#018x}, ours {config_fp:#018x})",
                path.display()
            ),
        });
    }
    let mut items = Vec::with_capacity(count.min(1 << 24) as usize);
    for _ in 0..count {
        let (Some(k), Some(v)) = (r.i64(), r.u64()) else {
            return Err(codec::corrupt(path, 36, claimed, found, "snapshot items"));
        };
        items.push((k, v));
    }
    if !r.is_empty() {
        return Err(codec::corrupt(path, 36, claimed, found, "snapshot items"));
    }
    Ok((seq, items))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::test_dir;

    #[test]
    fn names_roundtrip() {
        assert_eq!(parse_snapshot_name(&snapshot_name(77)), Some(77));
        assert_eq!(parse_snapshot_name("snapshot-xyz.snap"), None);
        assert_eq!(parse_snapshot_name("wal-0.log"), None);
        // The tmp sibling never parses as a live snapshot.
        assert_eq!(
            parse_snapshot_name(&format!("{}.tmp", snapshot_name(1))),
            None
        );
    }

    #[test]
    fn roundtrip_empty_and_full() {
        let dir = test_dir("snap-roundtrip");
        let items = vec![(-5_i64, 50_u64), (0, 0), (9, 99)];
        let p0 = write_snapshot(&dir, 3, 0, &[]).unwrap();
        let p1 = write_snapshot(&dir, 3, 128, &items).unwrap();
        assert_eq!(read_snapshot(&p0, 3).unwrap(), (0, vec![]));
        assert_eq!(read_snapshot(&p1, 3).unwrap(), (128, items));
        // No .tmp remnants after a clean write.
        let tmps = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .ends_with(".tmp")
            })
            .count();
        assert_eq!(tmps, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corruption_and_fingerprint_are_refused() {
        let dir = test_dir("snap-corrupt");
        let p = write_snapshot(&dir, 3, 8, &[(1, 2), (3, 4)]).unwrap();
        assert!(matches!(
            read_snapshot(&p, 4),
            Err(PimError::InvalidArgument { .. })
        ));
        let mut bytes = std::fs::read(&p).unwrap();
        for i in [0, 12, 20, bytes.len() / 2, bytes.len() - 1] {
            bytes[i] ^= 0x10;
            std::fs::write(&p, &bytes).unwrap();
            match read_snapshot(&p, 3) {
                Err(PimError::Corruption { path, .. }) => {
                    assert!(path.ends_with("snapshot-0000000000000008.snap"))
                }
                other => panic!("flip at {i}: expected Corruption, got {other:?}"),
            }
            bytes[i] ^= 0x10;
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
