//! Write-ahead log segments: append-only files of checksummed frames.
//!
//! A segment file is
//!
//! ```text
//! [magic "PIMWAL01"] [version: u32] [config_fp: u64] [start_seq: u64] [crc: u32]
//! frame*
//! ```
//!
//! (header checksummed like a frame payload), followed by zero or more
//! frames (see [`crate::durable::codec`]). Segments are named
//! `wal-<start_seq:016x>.log`; `start_seq` is the stream index of the
//! first op the segment may contain, which is also how the manifest names
//! them. A new segment starts at every snapshot, so compaction is "delete
//! every segment older than the live snapshot".

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use pim_runtime::crc::crc32;

use crate::durable::codec::{self, Frame, FrameRead, Reader};
use crate::error::{PimError, PimResult};
use crate::op::Op;

pub(crate) const WAL_MAGIC: &[u8; 8] = b"PIMWAL01";
pub(crate) const WAL_VERSION: u32 = 1;
/// Header bytes: magic + version + fingerprint + start_seq + crc.
pub(crate) const WAL_HEADER_LEN: u64 = 8 + 4 + 8 + 8 + 4;

/// File name of the segment whose first op has stream index `start_seq`.
pub(crate) fn segment_name(start_seq: u64) -> String {
    format!("wal-{start_seq:016x}.log")
}

/// Parse a `wal-<hex>.log` name back to its start sequence.
pub(crate) fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    u64::from_str_radix(hex, 16).ok()
}

fn encode_header(config_fp: u64, start_seq: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(WAL_HEADER_LEN as usize);
    h.extend_from_slice(WAL_MAGIC);
    codec::put_u32(&mut h, WAL_VERSION);
    codec::put_u64(&mut h, config_fp);
    codec::put_u64(&mut h, start_seq);
    let crc = crc32(&h);
    codec::put_u32(&mut h, crc);
    h
}

/// Fsync a directory so a freshly created/renamed file name is durable.
pub(crate) fn sync_dir(dir: &Path) -> PimResult<()> {
    let d = File::open(dir).map_err(|e| PimError::io("dir_sync", dir, &e))?;
    d.sync_all().map_err(|e| PimError::io("dir_sync", dir, &e))
}

/// An open, appendable WAL segment.
pub(crate) struct WalWriter {
    file: File,
    path: PathBuf,
    /// Stream index of the segment's first op.
    pub start_seq: u64,
    /// Bytes written (and valid) so far, header included.
    pub bytes: u64,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("path", &self.path)
            .field("start_seq", &self.start_seq)
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl WalWriter {
    /// Create a fresh segment starting at `start_seq`, write and sync its
    /// header, and make the file name durable.
    pub fn create(dir: &Path, config_fp: u64, start_seq: u64) -> PimResult<Self> {
        let path = dir.join(segment_name(start_seq));
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(&path)
            .map_err(|e| PimError::io("wal_create", &path, &e))?;
        let header = encode_header(config_fp, start_seq);
        file.write_all(&header)
            .map_err(|e| PimError::io("wal_create", &path, &e))?;
        file.sync_all()
            .map_err(|e| PimError::io("wal_sync", &path, &e))?;
        sync_dir(dir)?;
        Ok(WalWriter {
            file,
            path,
            start_seq,
            bytes: WAL_HEADER_LEN,
        })
    }

    /// Re-open an existing segment for appending after recovery, truncating
    /// it to `valid_len` first (dropping any torn tail on disk, not just in
    /// the reader's view).
    pub fn reopen(dir: &Path, start_seq: u64, valid_len: u64) -> PimResult<Self> {
        let path = dir.join(segment_name(start_seq));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| PimError::io("wal_reopen", &path, &e))?;
        file.set_len(valid_len)
            .map_err(|e| PimError::io("wal_truncate", &path, &e))?;
        let mut file = file;
        file.seek(SeekFrom::End(0))
            .map_err(|e| PimError::io("wal_reopen", &path, &e))?;
        file.sync_all()
            .map_err(|e| PimError::io("wal_sync", &path, &e))?;
        Ok(WalWriter {
            file,
            path,
            start_seq,
            bytes: valid_len,
        })
    }

    /// Append one frame for the committed run `ops` starting at stream
    /// index `seq`. Buffered by the OS until [`WalWriter::sync`].
    pub fn append(&mut self, seq: u64, ops: &[Op]) -> PimResult<()> {
        let frame = codec::encode_frame(seq, ops);
        self.file
            .write_all(&frame)
            .map_err(|e| PimError::io("wal_append", &self.path, &e))?;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Fsync the segment: every appended frame is durable after this
    /// returns.
    pub fn sync(&mut self) -> PimResult<()> {
        self.file
            .sync_data()
            .map_err(|e| PimError::io("wal_sync", &self.path, &e))
    }
}

/// Where and why a segment scan stopped early.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TornTail {
    /// Byte offset of the first invalid frame.
    pub offset: u64,
    /// Checksum the bad frame claimed (0 if truncated before the header
    /// completed).
    pub expected: u32,
    /// Checksum its bytes hash to (0 if truncated).
    pub found: u32,
}

/// A fully scanned segment.
#[derive(Debug)]
pub(crate) struct SegmentRead {
    /// Stream index of the first op (from the header).
    pub start_seq: u64,
    /// All checksum-valid frames, in file order.
    pub frames: Vec<Frame>,
    /// Prefix length (bytes) covered by the header + valid frames.
    pub valid_len: u64,
    /// Set when the scan stopped at a torn/corrupt frame.
    pub torn: Option<TornTail>,
}

/// Scan one segment file. Header corruption is a hard
/// [`PimError::Corruption`] (a segment that lies about its identity cannot
/// be partially trusted); frame corruption ends the scan with a
/// [`TornTail`] so the caller can decide whether a torn tail is legal
/// (last segment) or fatal (an interior one).
pub(crate) fn read_segment(path: &Path, config_fp: u64) -> PimResult<SegmentRead> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| PimError::io("wal_read", path, &e))?;

    if bytes.len() < WAL_HEADER_LEN as usize {
        return Err(codec::corrupt(path, 0, 0, 0, "wal segment header"));
    }
    let (head, body) = bytes.split_at(WAL_HEADER_LEN as usize);
    let claimed = u32::from_le_bytes(head[WAL_HEADER_LEN as usize - 4..].try_into().unwrap());
    let found = crc32(&head[..WAL_HEADER_LEN as usize - 4]);
    if &head[..8] != WAL_MAGIC || found != claimed {
        return Err(codec::corrupt(
            path,
            0,
            claimed,
            found,
            "wal segment header",
        ));
    }
    let mut hr = Reader::new(&head[8..]);
    let version = hr.u32().unwrap();
    let fp = hr.u64().unwrap();
    let start_seq = hr.u64().unwrap();
    if version != WAL_VERSION {
        return Err(codec::corrupt(path, 8, WAL_VERSION, version, "wal version"));
    }
    if fp != config_fp {
        return Err(PimError::InvalidArgument {
            op: "recover_from_dir",
            reason: format!(
                "{} was written under a different configuration \
                 (fingerprint {fp:#018x}, ours {:#018x})",
                path.display(),
                config_fp
            ),
        });
    }

    let mut frames = Vec::new();
    let mut r = Reader::new(body);
    let mut expected_seq = start_seq;
    let torn = loop {
        let frame_start = r.pos();
        match codec::decode_frame(&mut r) {
            FrameRead::End => break None,
            FrameRead::Ok(f) => {
                // A checksum-valid frame whose sequence breaks the chain
                // means frames were lost or reordered — stop before it.
                if f.seq != expected_seq {
                    break Some(TornTail {
                        offset: WAL_HEADER_LEN + frame_start as u64,
                        expected: 0,
                        found: 0,
                    });
                }
                expected_seq += f.ops.len() as u64;
                frames.push(f);
            }
            FrameRead::Torn {
                offset,
                expected,
                found,
            } => {
                break Some(TornTail {
                    offset: WAL_HEADER_LEN + offset as u64,
                    expected,
                    found,
                })
            }
        }
    };
    let valid_len = torn.map_or(bytes.len() as u64, |t| t.offset);
    Ok(SegmentRead {
        start_seq,
        frames,
        valid_len,
        torn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::test_dir;

    #[test]
    fn segment_names_roundtrip() {
        assert_eq!(segment_name(0), "wal-0000000000000000.log");
        assert_eq!(parse_segment_name(&segment_name(0xABC)), Some(0xABC));
        assert_eq!(parse_segment_name("wal-zz.log"), None);
        assert_eq!(parse_segment_name("snapshot-0.snap"), None);
    }

    #[test]
    fn write_read_roundtrip_and_torn_tail() {
        let dir = test_dir("wal-roundtrip");
        let ops1 = vec![
            Op::Upsert { key: 1, value: 10 },
            Op::Upsert { key: 2, value: 20 },
        ];
        let ops2 = vec![Op::Get { key: 1 }];
        let mut w = WalWriter::create(&dir, 7, 0).unwrap();
        w.append(0, &ops1).unwrap();
        w.append(2, &ops2).unwrap();
        w.sync().unwrap();
        let path = dir.join(segment_name(0));

        let read = read_segment(&path, 7).unwrap();
        assert_eq!(read.start_seq, 0);
        assert!(read.torn.is_none());
        assert_eq!(read.frames.len(), 2);
        assert_eq!(read.frames[0].ops, ops1);
        assert_eq!(read.frames[1].seq, 2);
        let full_len = read.valid_len;

        // Chop one byte off: the last frame is torn, the first survives.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 1]).unwrap();
        let read = read_segment(&path, 7).unwrap();
        assert_eq!(read.frames.len(), 1);
        let t = read.torn.expect("tail must be reported torn");
        assert!(read.valid_len < full_len);
        assert_eq!(read.valid_len, t.offset);

        // Wrong fingerprint is refused outright.
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_segment(&path, 8),
            Err(PimError::InvalidArgument { .. })
        ));

        // A corrupted header is a hard Corruption error with the path.
        let mut broken = bytes;
        broken[3] ^= 0xFF;
        std::fs::write(&path, &broken).unwrap();
        match read_segment(&path, 7) {
            Err(PimError::Corruption { path: p, .. }) => {
                assert!(p.ends_with("wal-0000000000000000.log"))
            }
            other => panic!("expected Corruption, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_truncates_torn_tail_on_disk() {
        let dir = test_dir("wal-reopen");
        let mut w = WalWriter::create(&dir, 1, 5).unwrap();
        w.append(5, &[Op::Delete { key: 9 }]).unwrap();
        w.sync().unwrap();
        let path = dir.join(segment_name(5));
        // Simulate a torn append.
        let mut bytes = std::fs::read(&path).unwrap();
        let valid = bytes.len() as u64;
        bytes.extend_from_slice(&[0xAA; 5]);
        std::fs::write(&path, &bytes).unwrap();

        let read = read_segment(&path, 1).unwrap();
        assert_eq!(read.valid_len, valid);
        let mut w = WalWriter::reopen(&dir, 5, read.valid_len).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), valid);
        // Appending after reopen lands on the valid boundary.
        w.append(6, &[Op::Get { key: 9 }]).unwrap();
        w.sync().unwrap();
        let read = read_segment(&path, 1).unwrap();
        assert!(read.torn.is_none());
        assert_eq!(read.frames.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
