//! The `MANIFEST`: which snapshot is live and which WAL segments exist.
//!
//! ```text
//! [magic "PIMMANI1"] [version: u32] [config_fp: u64]
//! [snap_count: u32] snap_count × [snapshot_seq: u64]
//! [seg_count: u32]  seg_count  × [segment_start_seq: u64]
//! [crc: u32]
//! ```
//!
//! Rewritten atomically (tmp + fsync + rename + dir fsync) after every
//! snapshot/compaction. The manifest is an *index*, not the source of
//! truth: every file it names is still individually checksummed, and when
//! the manifest is missing or corrupt, recovery falls back to scanning the
//! directory for well-formed `snapshot-*.snap` / `wal-*.log` names.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use pim_runtime::crc::crc32;

use crate::durable::codec::{self, Reader};
use crate::durable::wal::sync_dir;
use crate::durable::{snapshot, wal};
use crate::error::{PimError, PimResult};

pub(crate) const MANIFEST_MAGIC: &[u8; 8] = b"PIMMANI1";
pub(crate) const MANIFEST_VERSION: u32 = 1;
pub(crate) const MANIFEST_NAME: &str = "MANIFEST";

/// The durable directory's table of contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Manifest {
    /// Retained snapshot op-seqs, newest first.
    pub snapshots: Vec<u64>,
    /// Live segment start-seqs, ascending.
    pub segments: Vec<u64>,
}

/// Atomically rewrite the manifest.
pub(crate) fn write_manifest(dir: &Path, config_fp: u64, m: &Manifest) -> PimResult<()> {
    let mut bytes = Vec::with_capacity(28 + 8 * (m.snapshots.len() + m.segments.len()));
    bytes.extend_from_slice(MANIFEST_MAGIC);
    codec::put_u32(&mut bytes, MANIFEST_VERSION);
    codec::put_u64(&mut bytes, config_fp);
    codec::put_u32(&mut bytes, m.snapshots.len() as u32);
    for &s in &m.snapshots {
        codec::put_u64(&mut bytes, s);
    }
    codec::put_u32(&mut bytes, m.segments.len() as u32);
    for &s in &m.segments {
        codec::put_u64(&mut bytes, s);
    }
    let crc = crc32(&bytes);
    codec::put_u32(&mut bytes, crc);

    let path = dir.join(MANIFEST_NAME);
    let tmp = dir.join("MANIFEST.tmp");
    let mut f = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(&tmp)
        .map_err(|e| PimError::io("manifest_write", &tmp, &e))?;
    f.write_all(&bytes)
        .map_err(|e| PimError::io("manifest_write", &tmp, &e))?;
    f.sync_all()
        .map_err(|e| PimError::io("manifest_sync", &tmp, &e))?;
    drop(f);
    std::fs::rename(&tmp, &path).map_err(|e| PimError::io("manifest_rename", &path, &e))?;
    sync_dir(dir)
}

/// Read and verify the manifest. `Ok(None)` when the file does not exist
/// *or* fails its checksum — both send the caller to the directory-scan
/// fallback (the files themselves are still individually verified there).
/// A valid manifest with the wrong config fingerprint is a hard error.
pub(crate) fn read_manifest(dir: &Path, config_fp: u64) -> PimResult<Option<Manifest>> {
    let path = dir.join(MANIFEST_NAME);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(PimError::io("manifest_read", &path, &e)),
        Ok(mut f) => f
            .read_to_end(&mut bytes)
            .map_err(|e| PimError::io("manifest_read", &path, &e))?,
    };
    if bytes.len() < 32 {
        return Ok(None);
    }
    let (body, tail) = bytes.split_at(bytes.len() - 4);
    let claimed = u32::from_le_bytes(tail.try_into().unwrap());
    if crc32(body) != claimed || &body[..8] != MANIFEST_MAGIC {
        return Ok(None);
    }
    let mut r = Reader::new(&body[8..]);
    let (Some(version), Some(fp)) = (r.u32(), r.u64()) else {
        return Ok(None);
    };
    if version != MANIFEST_VERSION {
        return Ok(None);
    }
    if fp != config_fp {
        return Err(PimError::InvalidArgument {
            op: "recover_from_dir",
            reason: format!(
                "{} was written under a different configuration \
                 (fingerprint {fp:#018x}, ours {config_fp:#018x})",
                path.display()
            ),
        });
    }
    let read_list = |r: &mut Reader<'_>| -> Option<Vec<u64>> {
        let n = r.u32()?;
        let mut v = Vec::with_capacity(n.min(1 << 20) as usize);
        for _ in 0..n {
            v.push(r.u64()?);
        }
        Some(v)
    };
    let (Some(snapshots), Some(segments)) = (read_list(&mut r), read_list(&mut r)) else {
        return Ok(None);
    };
    if !r.is_empty() {
        return Ok(None);
    }
    Ok(Some(Manifest {
        snapshots,
        segments,
    }))
}

/// Directory-scan fallback: list every well-formed snapshot/segment name.
/// (Contents are verified later, when the files are actually read.)
pub(crate) fn scan_dir(dir: &Path) -> PimResult<Manifest> {
    let mut snapshots = Vec::new();
    let mut segments = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| PimError::io("recover_scan", dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| PimError::io("recover_scan", dir, &e))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(seq) = snapshot::parse_snapshot_name(&name) {
            snapshots.push(seq);
        } else if let Some(seq) = wal::parse_segment_name(&name) {
            segments.push(seq);
        }
    }
    snapshots.sort_unstable_by(|a, b| b.cmp(a));
    segments.sort_unstable();
    Ok(Manifest {
        snapshots,
        segments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durable::test_dir;

    #[test]
    fn roundtrip_and_atomic_rewrite() {
        let dir = test_dir("manifest-roundtrip");
        let m1 = Manifest {
            snapshots: vec![],
            segments: vec![0],
        };
        write_manifest(&dir, 9, &m1).unwrap();
        assert_eq!(read_manifest(&dir, 9).unwrap(), Some(m1));
        let m2 = Manifest {
            snapshots: vec![256, 128],
            segments: vec![128, 256],
        };
        write_manifest(&dir, 9, &m2).unwrap();
        assert_eq!(read_manifest(&dir, 9).unwrap(), Some(m2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_or_corrupt_falls_back_wrong_config_refused() {
        let dir = test_dir("manifest-fallback");
        assert_eq!(read_manifest(&dir, 1).unwrap(), None);
        let m = Manifest {
            snapshots: vec![4],
            segments: vec![4, 9],
        };
        write_manifest(&dir, 1, &m).unwrap();
        assert!(matches!(
            read_manifest(&dir, 2),
            Err(PimError::InvalidArgument { .. })
        ));
        // Corrupt it: reader treats it as absent, not fatal.
        let path = dir.join(MANIFEST_NAME);
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(read_manifest(&dir, 1).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_finds_well_formed_names_only() {
        let dir = test_dir("manifest-scan");
        for name in [
            "snapshot-0000000000000010.snap",
            "snapshot-0000000000000002.snap",
            "wal-0000000000000002.log",
            "wal-0000000000000010.log",
            "snapshot-0000000000000099.snap.tmp",
            "MANIFEST",
            "notes.txt",
        ] {
            std::fs::write(dir.join(name), b"x").unwrap();
        }
        let m = scan_dir(&dir).unwrap();
        assert_eq!(m.snapshots, vec![0x10, 0x02]);
        assert_eq!(m.segments, vec![0x02, 0x10]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
