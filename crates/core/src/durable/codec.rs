//! Binary encoding of [`Op`] streams and checksummed frames.
//!
//! Everything on disk is little-endian and fixed-layout — no serde, no
//! varints, mirroring the repo's hand-rolled `Json`. An op is a 1-byte tag
//! followed by its fields; a WAL frame is
//!
//! ```text
//! [len: u32] [crc: u32] [payload: len bytes]
//! payload = [seq: u64] [count: u32] count × op
//! ```
//!
//! where `crc` is the CRC-32 of the payload ([`pim_runtime::crc32`]) and
//! `seq` is the stream index of the frame's first operation. A torn or
//! bit-flipped tail therefore fails either the length bound or the
//! checksum, and the reader stops at the last frame that passes both.

use pim_runtime::crc::crc32;

use crate::config::{Key, Value};
use crate::error::PimError;
use crate::op::Op;
use crate::tasks::RangeFunc;

/// Append a little-endian `u32`.
pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `i64`.
pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Cursor over a decode buffer; every read is bounds-checked.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self) -> Option<i64> {
        self.take(8)
            .map(|s| i64::from_le_bytes(s.try_into().unwrap()))
    }
}

// Op tags. Stable on-disk values: never renumber, only append.
const TAG_GET: u8 = 0;
const TAG_UPDATE: u8 = 1;
const TAG_UPSERT: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_PREDECESSOR: u8 = 4;
const TAG_SUCCESSOR: u8 = 5;
const TAG_RANGE: u8 = 6;

// RangeFunc tags.
const FUNC_READ: u8 = 0;
const FUNC_COUNT: u8 = 1;
const FUNC_SUM: u8 = 2;
const FUNC_MIN: u8 = 3;
const FUNC_MAX: u8 = 4;
const FUNC_FETCH_ADD: u8 = 5;
const FUNC_ADD_IN_PLACE: u8 = 6;

/// Encode one op onto `out`.
pub(crate) fn encode_op(out: &mut Vec<u8>, op: &Op) {
    match *op {
        Op::Get { key } => {
            out.push(TAG_GET);
            put_i64(out, key);
        }
        Op::Update { key, value } => {
            out.push(TAG_UPDATE);
            put_i64(out, key);
            put_u64(out, value);
        }
        Op::Upsert { key, value } => {
            out.push(TAG_UPSERT);
            put_i64(out, key);
            put_u64(out, value);
        }
        Op::Delete { key } => {
            out.push(TAG_DELETE);
            put_i64(out, key);
        }
        Op::Predecessor { key } => {
            out.push(TAG_PREDECESSOR);
            put_i64(out, key);
        }
        Op::Successor { key } => {
            out.push(TAG_SUCCESSOR);
            put_i64(out, key);
        }
        Op::Range { lo, hi, func } => {
            out.push(TAG_RANGE);
            put_i64(out, lo);
            put_i64(out, hi);
            let (tag, operand): (u8, Value) = match func {
                RangeFunc::Read => (FUNC_READ, 0),
                RangeFunc::Count => (FUNC_COUNT, 0),
                RangeFunc::Sum => (FUNC_SUM, 0),
                RangeFunc::Min => (FUNC_MIN, 0),
                RangeFunc::Max => (FUNC_MAX, 0),
                RangeFunc::FetchAdd(d) => (FUNC_FETCH_ADD, d),
                RangeFunc::AddInPlace(d) => (FUNC_ADD_IN_PLACE, d),
            };
            out.push(tag);
            put_u64(out, operand);
        }
    }
}

/// Decode one op; `None` on truncation or an unknown tag.
pub(crate) fn decode_op(r: &mut Reader<'_>) -> Option<Op> {
    let tag = r.u8()?;
    Some(match tag {
        TAG_GET => Op::Get { key: r.i64()? },
        TAG_UPDATE => Op::Update {
            key: r.i64()?,
            value: r.u64()?,
        },
        TAG_UPSERT => Op::Upsert {
            key: r.i64()?,
            value: r.u64()?,
        },
        TAG_DELETE => Op::Delete { key: r.i64()? },
        TAG_PREDECESSOR => Op::Predecessor { key: r.i64()? },
        TAG_SUCCESSOR => Op::Successor { key: r.i64()? },
        TAG_RANGE => {
            let lo = r.i64()?;
            let hi = r.i64()?;
            let func_tag = r.u8()?;
            let operand = r.u64()?;
            let func = match func_tag {
                FUNC_READ => RangeFunc::Read,
                FUNC_COUNT => RangeFunc::Count,
                FUNC_SUM => RangeFunc::Sum,
                FUNC_MIN => RangeFunc::Min,
                FUNC_MAX => RangeFunc::Max,
                FUNC_FETCH_ADD => RangeFunc::FetchAdd(operand),
                FUNC_ADD_IN_PLACE => RangeFunc::AddInPlace(operand),
                _ => return None,
            };
            Op::Range { lo, hi, func }
        }
        _ => return None,
    })
}

/// Encode a full WAL frame (`len`, `crc`, payload) for the run starting at
/// stream index `seq`.
pub(crate) fn encode_frame(seq: u64, ops: &[Op]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(12 + ops.len() * 17);
    put_u64(&mut payload, seq);
    put_u32(&mut payload, ops.len() as u32);
    for op in ops {
        encode_op(&mut payload, op);
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

/// A decoded WAL frame.
#[derive(Debug)]
pub(crate) struct Frame {
    /// Stream index of the first op.
    pub seq: u64,
    /// The frame's operations (one committed coalescible run).
    pub ops: Vec<Op>,
}

/// Outcome of [`decode_frame`]: a frame, a clean end, or a torn/corrupt
/// tail starting at the reported offset.
pub(crate) enum FrameRead {
    /// A complete, checksum-valid frame.
    Ok(Frame),
    /// The buffer ends exactly at a frame boundary.
    End,
    /// The remaining bytes are not a valid frame (torn write, bit flip,
    /// or garbage). Recovery truncates the file here.
    Torn {
        /// Offset (within the scanned region) where the bad frame starts.
        offset: usize,
        /// Why the frame was rejected (for [`PimError::Corruption`]).
        expected: u32,
        /// The checksum the bytes hash to (0 when the frame was simply
        /// truncated mid-header or mid-payload).
        found: u32,
    },
}

/// Decode the next frame from `r`. Never panics on hostile input.
pub(crate) fn decode_frame(r: &mut Reader<'_>) -> FrameRead {
    if r.is_empty() {
        return FrameRead::End;
    }
    let start = r.pos();
    let torn = |expected, found| FrameRead::Torn {
        offset: start,
        expected,
        found,
    };
    let Some(len) = r.u32() else {
        return torn(0, 0);
    };
    let Some(claimed) = r.u32() else {
        return torn(0, 0);
    };
    let Some(payload) = r.take(len as usize) else {
        return torn(claimed, 0);
    };
    let found = crc32(payload);
    if found != claimed {
        return torn(claimed, found);
    }
    let mut pr = Reader::new(payload);
    let (Some(seq), Some(count)) = (pr.u64(), pr.u32()) else {
        return torn(claimed, found);
    };
    let mut ops = Vec::with_capacity(count as usize);
    for _ in 0..count {
        match decode_op(&mut pr) {
            Some(op) => ops.push(op),
            // A checksum-valid payload that fails to decode is a schema
            // violation, not a torn write — but the recovery posture is
            // the same: stop before this frame.
            None => return torn(claimed, found),
        }
    }
    if !pr.is_empty() {
        return torn(claimed, found);
    }
    FrameRead::Ok(Frame { seq, ops })
}

/// Fingerprint of the construction parameters that must match between the
/// on-disk state and the structure recovering from it. (Recovering with a
/// different `p` or seed would replay into a structure that hashes keys to
/// different modules — silently wrong, so it is refused up front.)
pub(crate) fn config_fingerprint(cfg: &crate::config::Config) -> u64 {
    use pim_runtime::hashfn::mix64;
    let mut fp = mix64(0x00D1_D007 ^ u64::from(cfg.p));
    fp = mix64(fp ^ cfg.seed);
    fp = mix64(fp ^ u64::from(cfg.h_low));
    fp = mix64(fp ^ u64::from(cfg.max_level));
    fp
}

/// Decode error shorthand for snapshot/manifest readers.
pub(crate) fn corrupt(
    path: &std::path::Path,
    offset: u64,
    expected: u32,
    found: u32,
    detail: &str,
) -> PimError {
    PimError::Corruption {
        path: path.display().to_string(),
        offset,
        expected,
        found,
        detail: detail.to_string(),
    }
}

/// Sorted `(key, value)` pairs — the snapshot payload type.
pub(crate) type Items = Vec<(Key, Value)>;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<Op> {
        vec![
            Op::Get { key: -5 },
            Op::Update { key: 1, value: 2 },
            Op::Upsert {
                key: i64::MAX,
                value: u64::MAX,
            },
            Op::Delete { key: 0 },
            Op::Predecessor { key: 77 },
            Op::Successor { key: -77 },
            Op::Range {
                lo: -10,
                hi: 10,
                func: RangeFunc::FetchAdd(3),
            },
            Op::Range {
                lo: 0,
                hi: 1,
                func: RangeFunc::Min,
            },
        ]
    }

    #[test]
    fn ops_roundtrip() {
        let mut buf = Vec::new();
        for op in sample_ops() {
            encode_op(&mut buf, &op);
        }
        let mut r = Reader::new(&buf);
        for op in sample_ops() {
            assert_eq!(decode_op(&mut r), Some(op));
        }
        assert!(r.is_empty());
    }

    #[test]
    fn frame_roundtrip_and_tail_detection() {
        let ops = sample_ops();
        let frame = encode_frame(42, &ops);
        let mut r = Reader::new(&frame);
        match decode_frame(&mut r) {
            FrameRead::Ok(f) => {
                assert_eq!(f.seq, 42);
                assert_eq!(f.ops, ops);
            }
            _ => panic!("clean frame rejected"),
        }
        assert!(matches!(decode_frame(&mut r), FrameRead::End));

        // Any truncation of the frame is detected.
        for cut in 0..frame.len() {
            let mut r = Reader::new(&frame[..cut]);
            match decode_frame(&mut r) {
                FrameRead::End if cut == 0 => {}
                FrameRead::Torn { .. } if cut > 0 => {}
                _ => panic!("truncation at {cut} undetected"),
            }
        }

        // Any single-byte flip is detected.
        let mut bytes = frame.clone();
        for i in 0..bytes.len() {
            bytes[i] ^= 0x40;
            let mut r = Reader::new(&bytes);
            assert!(
                matches!(decode_frame(&mut r), FrameRead::Torn { .. }),
                "flip at byte {i} undetected"
            );
            bytes[i] ^= 0x40;
        }
    }

    #[test]
    fn fingerprint_separates_configs() {
        let a = crate::Config::new(4, 1 << 10, 1);
        let b = crate::Config::new(8, 1 << 10, 1);
        let c = crate::Config::new(4, 1 << 10, 2);
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
        assert_ne!(config_fingerprint(&a), config_fingerprint(&c));
        assert_eq!(config_fingerprint(&a), config_fingerprint(&a.clone()));
    }
}
