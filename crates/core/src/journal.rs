//! CPU-side operation journal — the recovery layer's source of truth.
//!
//! The PIM modules' local memories are volatile under the fault model: an
//! injected crash wipes a module cold. The driver therefore keeps a journal
//! of the structure's *logical* contents in host DRAM, updated only when a
//! batch completes undamaged. Recovery rebuilds module state from it:
//!
//! * [`crate::list::PimSkipList::recover_module`] re-materialises one
//!   module's node images (upper-part replicas at their exact slots, local
//!   nodes at their exact slots) so every handle held by other modules
//!   keeps resolving — which requires the journal to remember each key's
//!   tower handles;
//! * [`crate::list::PimSkipList::restore_all`] rebuilds the whole machine
//!   by bulk-loading the journal's `(key, value)` snapshot.
//!
//! Host DRAM is not PIM-module memory and journal maintenance is ordinary
//! CPU bookkeeping, so it is deliberately *unmetered*: with no fault plan
//! installed, metrics stay bit-identical to a build without the journal.
//!
//! One subtlety: upper-part replicas keep the value a key was *inserted*
//! with (later updates only touch the leaf), and the replica invariant
//! check compares values across modules. The journal therefore records both
//! the current value (what queries must see) and the insert-time value
//! (what a rebuilt replica must carry to match its healthy donors).

use std::collections::HashMap;

use pim_runtime::Handle;

use crate::config::{Key, Value};
use crate::op::Op;

/// How many tower levels a [`Tower`] stores inline. Heights are geometric
/// (`P(height > 4) = 2⁻⁴`), so ~94% of towers never touch the heap — which
/// keeps steady-state journal maintenance out of the allocator (the
/// journal half of the allocation contract in `docs/MODEL.md`).
const TOWER_INLINE: usize = 4;

/// A tower's handles, bottom-up: `tower[0]` is the leaf, `tower[j]` the
/// level-`j` node. Short towers live inline; tall ones spill to the heap.
/// Derefs to `[Handle]`, so reads look like the plain `Vec` it replaced.
#[derive(Debug, Clone)]
pub(crate) enum Tower {
    Inline {
        len: u8,
        slots: [Handle; TOWER_INLINE],
    },
    Heap(Vec<Handle>),
}

impl From<&[Handle]> for Tower {
    fn from(t: &[Handle]) -> Self {
        if t.len() <= TOWER_INLINE {
            let mut slots = [Handle::NULL; TOWER_INLINE];
            slots[..t.len()].copy_from_slice(t);
            Tower::Inline {
                len: t.len() as u8,
                slots,
            }
        } else {
            Tower::Heap(t.to_vec())
        }
    }
}

impl std::ops::Deref for Tower {
    type Target = [Handle];

    fn deref(&self) -> &[Handle] {
        match self {
            Tower::Inline { len, slots } => &slots[..*len as usize],
            Tower::Heap(v) => v,
        }
    }
}

/// Per-key journal record.
#[derive(Debug, Clone)]
pub(crate) struct JournalEntry {
    /// Current logical value (reflects updates, fetch-adds, range adds).
    pub value: Value,
    /// Value at insert time — what every upper-part replica of this tower
    /// stores (updates never rewrite replicas).
    pub inserted_value: Value,
    /// The tower's handles (see [`Tower`]).
    pub tower: Tower,
}

/// The driver's journal of live keys.
#[derive(Debug, Clone, Default)]
pub(crate) struct Journal {
    entries: HashMap<Key, JournalEntry>,
    /// The committed [`Op`] stream of `try_execute`, in commit order
    /// (populated only under [`crate::Config::record_op_log`]). Recovery
    /// rebuilds from the *snapshot* (`entries`), but the log pins the
    /// semantics: a fresh structure replaying it through `execute` holds
    /// exactly the snapshot's contents.
    op_log: Vec<Op>,
}

impl Journal {
    pub fn new() -> Self {
        Journal::default()
    }

    /// Record a committed insert (also used when a rebuild re-towers a key:
    /// the rebuilt replicas carry the then-current value uniformly, so
    /// `inserted_value` resets alongside).
    pub fn record_insert(&mut self, key: Key, value: Value, tower: &[Handle]) {
        self.entries.insert(
            key,
            JournalEntry {
                value,
                inserted_value: value,
                tower: Tower::from(tower),
            },
        );
    }

    /// Record a committed in-place update (leaf only; replicas untouched).
    pub fn record_update(&mut self, key: Key, value: Value) {
        if let Some(e) = self.entries.get_mut(&key) {
            e.value = value;
        }
    }

    /// Record a committed delete.
    pub fn remove(&mut self, key: Key) {
        self.entries.remove(&key);
    }

    /// Record a committed range add: every live key in `[lo, hi]` gained
    /// `delta` (wrapping, matching the module-side arithmetic).
    pub fn add_in_range(&mut self, lo: Key, hi: Key, delta: Value) {
        for (k, e) in self.entries.iter_mut() {
            if (lo..=hi).contains(k) {
                e.value = e.value.wrapping_add(delta);
            }
        }
    }

    /// Append one committed run of the mixed-stream entry point to the op
    /// log (no-op effect on recovery; audit/replay record only).
    pub fn record_ops(&mut self, ops: &[Op]) {
        self.op_log.extend_from_slice(ops);
    }

    /// The committed op stream recorded so far.
    pub fn op_log(&self) -> &[Op] {
        &self.op_log
    }

    /// Live keys recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Snapshot `(key, current value)`, ascending by key — the
    /// `restore_all` bulk-load input.
    pub fn items_sorted(&self) -> Vec<(Key, Value)> {
        let mut v: Vec<(Key, Value)> = self.entries.iter().map(|(&k, e)| (k, e.value)).collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// Snapshot full entries, ascending by key — the `recover_module`
    /// image-reconstruction input.
    pub fn entries_sorted(&self) -> Vec<(Key, JournalEntry)> {
        let mut v: Vec<(Key, JournalEntry)> =
            self.entries.iter().map(|(&k, e)| (k, e.clone())).collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_lifecycle() {
        let mut j = Journal::new();
        j.record_insert(5, 50, &[Handle::local(1, 0)]);
        j.record_insert(2, 20, &[Handle::local(0, 3), Handle::replicated(9)]);
        assert_eq!(j.len(), 2);
        j.record_update(5, 55);
        j.record_update(99, 1); // absent: no-op
        assert_eq!(j.items_sorted(), vec![(2, 20), (5, 55)]);
        j.add_in_range(0, 4, 10);
        assert_eq!(j.items_sorted(), vec![(2, 30), (5, 55)]);
        let entries = j.entries_sorted();
        assert_eq!(entries[0].1.inserted_value, 20, "insert-time value kept");
        assert_eq!(entries[0].1.tower.len(), 2);
        j.remove(2);
        assert_eq!(j.items_sorted(), vec![(5, 55)]);
    }
}
