//! Skip-list nodes and their pointer structure (§3.2, Fig. 2).
//!
//! Each node carries the four classic pointers (`left`, `right`, `up`,
//! `down`) plus the paper's three range-query pointers: `local_left` /
//! `local_right` chaining the leaves *within one module* into the local
//! leaf list, and `next_leaf` pointing from an upper-part leaf into the
//! local leaf list (dashed pointers of Fig. 2).
//!
//! Two implementation-level fields:
//!
//! * `right_key` caches the right neighbour's key so a search can decide
//!   "move right vs. move down" without a network hop to the neighbour —
//!   the standard distributed-skip-list device; it is maintained by every
//!   pointer write and keeps the per-lower-node cost at the paper's `O(1)`
//!   messages.
//! * `chain` stores, in each leaf, the handles of all tower nodes above it
//!   (the paper's step 5 of Insert: "record addresses of all lower-part new
//!   nodes in its up chain, and the existence of an upper-part node"; we
//!   keep the upper handles too instead of a boolean — same O(height)
//!   words, and it lets Delete unlink replicas without a search).

use pim_runtime::Handle;

use crate::config::{Key, Value, POS_INF};

/// One skip-list node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The node's key (`NEG_INF` for sentinels).
    pub key: Key,
    /// The stored value (meaningful at level 0).
    pub value: Value,
    /// This node's level (0 = leaf).
    pub level: u8,
    /// Left neighbour at this level.
    pub left: Handle,
    /// Right neighbour at this level.
    pub right: Handle,
    /// Same-tower node one level up (null at tower top).
    pub up: Handle,
    /// Same-tower node one level down (null at leaves).
    pub down: Handle,
    /// Cached key of `right` (`POS_INF` when `right` is null).
    pub right_key: Key,
    /// Previous leaf in this module's local leaf list (leaves only).
    pub local_left: Handle,
    /// Next leaf in this module's local leaf list (leaves only).
    pub local_right: Handle,
    /// Upper-part leaves only: successor of this key in the *owning
    /// module's* local leaf list. This is the one per-module field of a
    /// replicated node (each replica indexes its own module's list).
    pub next_leaf: Handle,
    /// Leaves only: handles of the tower nodes above this leaf, bottom-up
    /// (levels `1..=tower_top`).
    pub chain: Vec<Handle>,
    /// Tombstone set by Delete before splicing.
    pub deleted: bool,
}

impl Node {
    /// A fresh unlinked node.
    pub fn new(key: Key, value: Value, level: u8) -> Self {
        Node {
            key,
            value,
            level,
            left: Handle::NULL,
            right: Handle::NULL,
            up: Handle::NULL,
            down: Handle::NULL,
            right_key: POS_INF,
            local_left: Handle::NULL,
            local_right: Handle::NULL,
            next_leaf: Handle::NULL,
            chain: Vec::new(),
            deleted: false,
        }
    }

    /// Words of local memory this node occupies (constant plus the leaf
    /// chain), for Theorem 3.1 space accounting.
    pub fn words(&self) -> u64 {
        12 + self.chain.len() as u64
    }

    /// Is this a leaf?
    pub fn is_leaf(&self) -> bool {
        self.level == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_node_is_unlinked() {
        let n = Node::new(5, 50, 2);
        assert_eq!(n.key, 5);
        assert_eq!(n.level, 2);
        assert!(n.left.is_null() && n.right.is_null());
        assert!(n.up.is_null() && n.down.is_null());
        assert_eq!(n.right_key, POS_INF);
        assert!(!n.is_leaf());
        assert!(!n.deleted);
    }

    #[test]
    fn words_count_chain() {
        let mut n = Node::new(1, 1, 0);
        let w0 = n.words();
        n.chain.push(Handle::local(0, 1));
        n.chain.push(Handle::replicated(2));
        assert_eq!(n.words(), w0 + 2);
        assert!(n.is_leaf());
    }
}
