//! The one supported import surface of `pim-core`.
//!
//! ```
//! use pim_core::prelude::*;
//!
//! let mut list = PimSkipList::new(Config::new(4, 1 << 10, 42));
//! let replies = list.execute(&[Op::Upsert { key: 7, value: 70 }, Op::Get { key: 7 }]);
//! assert_eq!(replies[1], Reply::Value(Some(70)));
//! ```
//!
//! Everything an application needs rides here: the construction
//! [`Config`] (build it with [`Config::from_env`] to honour the `PIM_*`
//! environment), the typed mixed-stream contract ([`Op`] / [`OpKind`] /
//! [`Reply`] consumed by [`PimSkipList::execute`] and
//! [`PimSkipList::try_execute`]), durability
//! ([`DurabilityPolicy`] / [`FsyncPolicy`] and the
//! [`PimSkipList::enable_durability`] /
//! [`PimSkipList::recover_from_dir`] pair), and the telemetry handles
//! ([`Telemetry`], [`TelemetrySnapshot`]).
//!
//! The per-op `batch_*` methods remain available on [`PimSkipList`] for
//! paper-bound experiments (Table 1 measures each family in isolation),
//! but the `try_batch_*` free-standing wrappers are `#[doc(hidden)]`
//! shims over `execute` and new code should not import them.

pub use crate::config::{Config, Key, Value, NEG_INF, POS_INF};
pub use crate::durable::{DurabilityPolicy, DurableStats, FsyncPolicy, RecoveryReport};
pub use crate::error::{PimError, PimResult};
pub use crate::list::PimSkipList;
pub use crate::op::{Op, OpKind, Reply};
pub use crate::range::RangeResult;
pub use crate::tasks::RangeFunc;
pub use crate::UpsertOutcome;
pub use pim_runtime::{EnvSettings, Telemetry, TelemetrySnapshot};
