//! # pim-core — the PIM-balanced batch-parallel skip list
//!
//! This crate is the reproduction of the primary contribution of *"The
//! Processing-in-Memory Model"* (Kang, Gibbons, Blelloch, Dhulipala, Gu,
//! McGuffey — SPAA 2021): an ordered search structure for the PIM model
//! whose batch operations are **PIM-balanced** — `O(W/P)` PIM time and
//! `O(I/P)` IO time — under *adversary-controlled* batches, with all
//! network costs independent of `n` and of query/update skew.
//!
//! Design (§3, Fig. 2): the skip list is cut horizontally at height
//! `h_low = log P`. The **upper part** is replicated in every PIM module
//! (searches start locally anywhere); the **lower part** is distributed by
//! a secret hash of `(key, level)` (uniform load). Leaves additionally
//! carry per-module *local leaf lists* and upper-part leaves carry
//! `next_leaf` shortcuts, enabling broadcast range operations.
//!
//! Supported batch operations (Table 1 / §5):
//!
//! | operation | entry point |
//! |---|---|
//! | Get | [`PimSkipList::batch_get`] |
//! | Update | [`PimSkipList::batch_update`] |
//! | Predecessor | [`PimSkipList::batch_predecessor`] |
//! | Successor | [`PimSkipList::batch_successor`] |
//! | Upsert | [`PimSkipList::batch_upsert`] |
//! | Delete | [`PimSkipList::batch_delete`] |
//! | RangeOperation (broadcast) | [`PimSkipList::range_broadcast`] |
//! | RangeOperation (tree) | [`PimSkipList::batch_range`] |
//! | mixed stream (service layer) | [`PimSkipList::execute`] |
//!
//! Every operation runs on the simulated PIM machine of `pim-runtime` and
//! is fully metered (IO time, PIM time, rounds, CPU work/depth, shared
//! memory), so the paper's Table 1 bounds are directly measurable.
#![warn(missing_docs)]

pub mod arena;
pub mod batch;
pub mod config;
pub mod dot;
pub mod durable;
pub mod error;
mod hotcache;
pub mod invariants;
mod journal;
pub mod list;
pub mod module;
pub mod node;
pub mod op;
mod pipeline;
pub mod prelude;
pub mod range;
mod recover;
mod scratch;
pub mod tasks;
mod telem;

pub use batch::UpsertOutcome;
pub use config::{Config, Key, Value, NEG_INF, POS_INF};
pub use durable::{DurabilityPolicy, DurableStats, FsyncPolicy, RecoveryReport};
pub use error::{PimError, PimResult};
pub use list::PimSkipList;
pub use op::{Op, OpKind, Reply};
pub use pim_runtime::{FaultKind, FaultPlan};
pub use range::RangeResult;
pub use tasks::RangeFunc;
