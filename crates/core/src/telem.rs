//! The skip list's telemetry publisher.
//!
//! [`CoreTelemetry`] owns a [`pim_runtime::Telemetry`] registry plus the
//! pre-registered handles the execute path publishes into, so the hot
//! path never does a name lookup: [`PimSkipList::try_execute`] calls
//! [`CoreTelemetry::after_run`] once per committed coalescible run with
//! the machine-metrics *delta* of that run, and everything else is `O(1)`
//! handle updates. Like every observer in this codebase it lives behind
//! an `Option<Box<_>>` on the structure — dark runs pay one `is_some`
//! branch per run, and the machine's own accounting (replies, `Metrics`,
//! traces) is untouched either way.

use pim_runtime::telemetry::{CounterId, HistId, Telemetry};
use pim_runtime::Metrics;

use crate::durable::DurableStats;
use crate::list::PimSkipList;
use crate::op::OpKind;

/// Registry plus pre-registered handles for the core execute path.
pub(crate) struct CoreTelemetry {
    pub(crate) reg: Telemetry,
    /// Per-family committed-op counters, indexed by `OpKind as usize`.
    ops: [CounterId; 7],
    runs: CounterId,
    run_len: HistId,
    rounds: CounterId,
    io_time: CounterId,
    pim_time: CounterId,
    messages: CounterId,
    pim_work: CounterId,
    cpu_work: CounterId,
    wal_frames: CounterId,
    wal_bytes: CounterId,
    fsyncs: CounterId,
    snapshots: CounterId,
    compacted: CounterId,
}

const OP_LABELS: [&str; 7] = [
    "get",
    "update",
    "upsert",
    "delete",
    "predecessor",
    "successor",
    "range",
];

fn op_index(kind: OpKind) -> usize {
    match kind {
        OpKind::Get => 0,
        OpKind::Update => 1,
        OpKind::Upsert => 2,
        OpKind::Delete => 3,
        OpKind::Predecessor => 4,
        OpKind::Successor => 5,
        OpKind::Range => 6,
    }
}

impl CoreTelemetry {
    pub(crate) fn new() -> Self {
        Self::new_labeled(&[])
    }

    /// A registry whose every series carries `base` labels (the cluster
    /// tier stamps `shard="i"` so per-shard registries stay apart after a
    /// [`pim_runtime::TelemetrySnapshot::merged`]).
    pub(crate) fn new_labeled(base: &[(&str, &str)]) -> Self {
        let mut reg = Telemetry::new().with_base_labels(base);
        let ops = OP_LABELS.map(|l| reg.counter("pim_ops_total", &[("op", l)]));
        CoreTelemetry {
            runs: reg.counter("pim_runs_total", &[]),
            run_len: reg.histogram("pim_run_len", &[]),
            rounds: reg.counter("pim_rounds_total", &[]),
            io_time: reg.counter("pim_io_time_total", &[]),
            pim_time: reg.counter("pim_time_total", &[]),
            messages: reg.counter("pim_messages_total", &[]),
            pim_work: reg.counter("pim_work_total", &[]),
            cpu_work: reg.counter("pim_cpu_work_total", &[]),
            wal_frames: reg.counter("pim_wal_frames_total", &[]),
            wal_bytes: reg.counter("pim_wal_bytes_total", &[]),
            fsyncs: reg.counter("pim_wal_fsyncs_total", &[]),
            snapshots: reg.counter("pim_snapshots_total", &[]),
            compacted: reg.counter("pim_compacted_segments_total", &[]),
            ops,
            reg,
        }
    }

    /// Publish one committed run: its family, length, and the machine
    /// cost it accrued (`delta` = metrics after − metrics before).
    pub(crate) fn after_run(&mut self, kind: OpKind, len: u64, delta: Metrics) {
        self.reg.add(self.ops[op_index(kind)], len);
        self.reg.add(self.runs, 1);
        self.reg.observe(self.run_len, len);
        self.reg.add(self.rounds, delta.rounds);
        self.reg.add(self.io_time, delta.io_time);
        self.reg.add(self.pim_time, delta.pim_time);
        self.reg.add(self.messages, delta.total_messages);
        self.reg.add(self.pim_work, delta.total_pim_work);
        self.reg.add(self.cpu_work, delta.cpu_work);
    }

    /// Publish the durable layer's running totals (absolute, via
    /// [`Telemetry::store`] — the layer keeps its own counts).
    pub(crate) fn publish_durable(&mut self, s: DurableStats) {
        self.reg.store(self.wal_frames, s.wal_frames);
        self.reg.store(self.wal_bytes, s.wal_bytes);
        self.reg.store(self.fsyncs, s.fsyncs);
        self.reg.store(self.snapshots, s.snapshots);
        self.reg.store(self.compacted, s.compacted_segments);
    }
}

impl PimSkipList {
    /// Turn on telemetry: from now on every committed run publishes
    /// per-op counters, run-length distribution, and machine-cost deltas
    /// into a [`Telemetry`] registry (and the durable layer's I/O
    /// counters are folded in at snapshot time). Idempotent. Dark
    /// structures pay one branch per run and behave bit-identically.
    pub fn enable_telemetry(&mut self) {
        if self.telemetry.is_none() {
            self.telemetry = Some(Box::new(CoreTelemetry::new()));
        }
    }

    /// [`PimSkipList::enable_telemetry`], but every series this machine
    /// publishes carries the given base labels (the cluster tier passes
    /// `shard="i"`). Idempotent; a registry already lit keeps its labels.
    pub fn enable_telemetry_with_labels(&mut self, base: &[(&str, &str)]) {
        if self.telemetry.is_none() {
            self.telemetry = Some(Box::new(CoreTelemetry::new_labeled(base)));
        }
    }

    /// Is telemetry enabled?
    pub fn telemetry_enabled(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Mutable access to the registry, for layered front-ends (the
    /// service tier) that register their own series and emit lifecycle
    /// events into the same registry (`None` when dark).
    pub fn telemetry_mut(&mut self) -> Option<&mut Telemetry> {
        self.telemetry.as_deref_mut().map(|t| &mut t.reg)
    }

    /// Freeze the registry into a render-ready
    /// [`pim_runtime::TelemetrySnapshot`], folding in the durable
    /// layer's current I/O totals (`None` when dark).
    pub fn telemetry_snapshot(&mut self) -> Option<pim_runtime::TelemetrySnapshot> {
        let stats = self.durable_stats();
        let t = self.telemetry.as_deref_mut()?;
        if let Some(s) = stats {
            t.publish_durable(s);
        }
        Some(t.reg.snapshot())
    }

    /// Detach and return the registry (telemetry goes dark again;
    /// `None` if it never was lit). Folds in durable totals first.
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        let stats = self.durable_stats();
        let mut t = self.telemetry.take()?;
        if let Some(s) = stats {
            t.publish_durable(s);
        }
        Some(t.reg)
    }
}
