//! The CPU-side driver: [`PimSkipList`].
//!
//! The driver plays the role of the model's CPU side: it stages batches in
//! shared memory, runs the CPU-side parallel preprocessing (sort, semisort,
//! hint computation — all charged as CPU work/depth), issues `TaskSend`s,
//! and advances the machine round by round. All structural mutations of the
//! replicated arena flow through CPU broadcasts paired with the
//! [`ShadowAllocator`], keeping every module's replica bit-identical.

use pim_runtime::hashfn;
use pim_runtime::{FaultPlan, Handle, Metrics, ModuleId, PimSystem, Rng};

use crate::arena::ShadowAllocator;
use crate::config::{Config, Key, Value};
use crate::journal::Journal;
use crate::module::{ModuleParams, SkipModule};
use crate::node::Node;
use crate::tasks::Task;

/// A PIM-balanced batch-parallel skip list on a simulated PIM machine.
///
/// ```
/// use pim_core::{Config, PimSkipList};
///
/// let mut list = PimSkipList::new(Config::new(4, 1 << 10, 42));
/// list.batch_upsert(&[(10, 100), (20, 200), (30, 300)]);
/// assert_eq!(list.batch_get(&[20, 25]), vec![Some(200), None]);
/// assert_eq!(list.len(), 3);
/// ```
pub struct PimSkipList {
    pub(crate) sys: PimSystem<SkipModule>,
    pub(crate) cfg: Config,
    pub(crate) shadow: ShadowAllocator,
    pub(crate) rng: Rng,
    pub(crate) len: u64,
    /// Host-DRAM journal of committed contents (recovery source of truth;
    /// unmetered CPU bookkeeping, see [`crate::journal`]).
    pub(crate) journal: Journal,
    /// Max per-node access count in each stage-1 phase of the last pivoted
    /// batch (Lemma 4.2 instrumentation; populated only when
    /// [`Config::track_contention`] is set).
    pub last_phase_contention: Vec<u32>,
    /// Reusable CPU-side staging buffers (capacity recycled across
    /// batches; see [`crate::scratch`]).
    pub(crate) scratch: crate::scratch::Scratch,
    /// Durable persistence layer (`None` unless
    /// [`PimSkipList::enable_durability`] was called — the hot path then
    /// pays exactly one `is_some` branch per committed run).
    pub(crate) durable: Option<Box<crate::durable::Durability>>,
    /// Telemetry registry (`None` unless
    /// [`PimSkipList::enable_telemetry`] was called — same one-branch
    /// dark-mode contract as `durable`).
    pub(crate) telemetry: Option<Box<crate::telem::CoreTelemetry>>,
    /// Double-buffered run staging for the pipelined driver (see
    /// [`crate::pipeline`]): the front half holds the stage the current
    /// run consumes, the back half is filled by the side thread. Empty
    /// (and cost-free) unless [`crate::Config::pipeline`] is set.
    pub(crate) stage: pim_runtime::DoubleBuffer<crate::pipeline::StagedRun>,
    /// Bumped at the start of every structural-mutation phase (upsert
    /// link, delete mark, bulk load, recovery); the push-pull hot-node
    /// cache invalidates its snapshots when it observes a new value (see
    /// [`crate::hotcache`]). Plain bookkeeping — maintained whether or
    /// not push-pull is on, so toggling the feature never changes it.
    pub(crate) write_epoch: u64,
    /// Push-pull hot-node cache (`None` unless [`Config::push_pull`] —
    /// the search hot path then pays exactly one `is_some` branch, same
    /// dark-mode contract as `durable`/`telemetry`).
    pub(crate) hot: Option<Box<crate::hotcache::HotNodeCache>>,
}

impl PimSkipList {
    /// Build an empty structure on `cfg.p` PIM modules.
    pub fn new(cfg: Config) -> Self {
        let params = ModuleParams {
            p: cfg.p,
            h_low: cfg.h_low,
            max_level: cfg.max_level,
            seed: cfg.seed,
            track_contention: cfg.track_contention,
        };
        let sys = PimSystem::new(cfg.p, |id| SkipModule::new(id, params.clone()));
        let mut shadow = ShadowAllocator::new();
        for _ in 0..=cfg.max_level {
            shadow.alloc(); // −∞ tower occupies slots 0..=max_level
        }
        let rng = Rng::new(cfg.seed ^ 0x5EED_5EED);
        let hot = cfg
            .push_pull
            .then(|| Box::new(crate::hotcache::HotNodeCache::new(cfg.push_pull_capacity())));
        PimSkipList {
            sys,
            cfg,
            shadow,
            rng,
            len: 0,
            journal: Journal::new(),
            last_phase_contention: Vec::new(),
            scratch: crate::scratch::Scratch::default(),
            durable: None,
            telemetry: None,
            stage: pim_runtime::DoubleBuffer::default(),
            write_epoch: 0,
            hot,
        }
    }

    /// Turn run pipelining on or off at runtime (see
    /// [`crate::Config::pipeline`] — same contract: wall-clock only,
    /// replies/metrics/traces byte-identical either way).
    pub fn set_pipeline(&mut self, pipeline: bool) {
        self.cfg.pipeline = pipeline;
        if !pipeline {
            let (front, back) = self.stage.split_mut();
            front.clear();
            back.clear();
        }
    }

    /// Is run pipelining currently on?
    pub fn pipeline_enabled(&self) -> bool {
        self.cfg.pipeline
    }

    /// Turn push-pull batch search on or off at runtime (see
    /// [`crate::Config::push_pull`]). Turning it off releases the cache
    /// and its charged shared memory; the structure is then byte-identical
    /// in behaviour to one that never had the feature. Turning it on
    /// starts from a cold (empty) cache.
    pub fn set_push_pull(&mut self, on: bool) {
        self.cfg.push_pull = on;
        if on {
            if self.hot.is_none() {
                self.hot = Some(Box::new(crate::hotcache::HotNodeCache::new(
                    self.cfg.push_pull_capacity(),
                )));
            }
        } else if let Some(hot) = self.hot.take() {
            if hot.charged_words > 0 {
                self.sys.sample_shared_mem();
                self.sys.shared_mem().free(hot.charged_words);
            }
        }
    }

    /// Is push-pull batch search currently on?
    pub fn push_pull_enabled(&self) -> bool {
        self.hot.is_some()
    }

    /// Resident hot-node cache records (bench/test instrumentation; 0
    /// with push-pull off).
    pub fn hot_cache_len(&self) -> usize {
        self.hot.as_ref().map_or(0, |h| h.len())
    }

    /// Mark the start of a structural-mutation phase: the push-pull cache
    /// must not trust its snapshots past this point (see
    /// [`crate::hotcache`] for the coherence rule).
    pub(crate) fn bump_write_epoch(&mut self) {
        self.write_epoch = self.write_epoch.wrapping_add(1);
    }

    /// The [`ModuleParams`] every module of this structure was built with
    /// (recovery reconstructs crashed modules from them).
    pub(crate) fn module_params(&self) -> ModuleParams {
        ModuleParams {
            p: self.cfg.p,
            h_low: self.cfg.h_low,
            max_level: self.cfg.max_level,
            seed: self.cfg.seed,
            track_contention: self.cfg.track_contention,
        }
    }

    /// Install a deterministic fault schedule on the underlying machine
    /// (an empty plan removes the injector entirely — execution is then
    /// bit-identical to a machine that never had one).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.sys.set_fault_plan(plan);
    }

    /// Number of keys stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Is the structure empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configuration this structure was built with.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Number of PIM modules.
    pub fn p(&self) -> u32 {
        self.cfg.p
    }

    /// Snapshot of the machine's accumulated cost metrics.
    pub fn metrics(&self) -> Metrics {
        self.sys.metrics()
    }

    /// Local-memory words per module (Theorem 3.1 measurements).
    pub fn space_per_module(&self) -> Vec<u64> {
        self.sys.local_words_per_module()
    }

    /// Start recording one [`pim_runtime::RoundTrace`] per round
    /// (experiment instrumentation).
    pub fn enable_tracing(&mut self) {
        self.sys.enable_tracing();
    }

    /// Stop tracing and take the recorded rounds.
    pub fn take_trace(&mut self) -> pim_runtime::Trace {
        self.sys.take_trace()
    }

    /// Like [`PimSkipList::enable_tracing`] but keeping only the `cap`
    /// most-recent rounds (ring buffer; evictions are counted).
    pub fn enable_tracing_with_cap(&mut self, cap: usize) {
        self.sys.enable_tracing_with_cap(cap);
    }

    /// Start span-based cost attribution: every batch operation from now
    /// on brackets its phases with spans (see the span taxonomy in
    /// `docs/MODEL.md`), and every cost accrued is attributed to the
    /// innermost open span. Zero overhead for the machine's accounting —
    /// metrics and traces stay bit-identical.
    pub fn enable_probe(&mut self) {
        self.sys.enable_probe();
    }

    /// Stop probing and harvest the span report (`None` if
    /// [`PimSkipList::enable_probe`] was never called).
    pub fn take_probe(&mut self) -> Option<pim_runtime::ProbeReport> {
        self.sys.take_probe()
    }

    /// Run `f` inside a named span (no-op bracketing when no probe is
    /// enabled). The span closes when `f` returns, including on `Err`
    /// propagation from fault-observable attempts.
    pub(crate) fn spanned<T>(&mut self, name: &'static str, f: impl FnOnce(&mut Self) -> T) -> T {
        self.sys.span_enter(name);
        let out = f(self);
        self.sys.span_exit();
        out
    }

    /// Open a named probe span (no-op when no probe is enabled). Layered
    /// front-ends — the `pim-service` scheduler — bracket their own phases
    /// (`service/coalesce`, `service/dispatch`, `service/reply`) around
    /// the batch entry points with this; every span opened must be closed
    /// with [`PimSkipList::span_exit`] before the probe is harvested.
    pub fn span_enter(&mut self, name: &'static str) {
        self.sys.span_enter(name);
    }

    /// Close the innermost span opened with [`PimSkipList::span_enter`].
    pub fn span_exit(&mut self) {
        self.sys.span_exit();
    }

    /// Take this run's staged dedup survivors (key batches), if the
    /// pipelined driver staged them for `kind`. `dst` must be an empty
    /// lease; on `true` the staged buffer is swapped in (consumed — a
    /// retry recomputes inline).
    pub(crate) fn staged_uniq_keys(&mut self, kind: crate::op::OpKind, dst: &mut Vec<Key>) -> bool {
        self.stage.front_mut().take_uniq_keys(kind, dst)
    }

    /// Take this run's staged dedup survivors (pair batches), if staged.
    pub(crate) fn staged_uniq_pairs(
        &mut self,
        kind: crate::op::OpKind,
        dst: &mut Vec<(Key, Value)>,
    ) -> bool {
        self.stage.front_mut().take_uniq_pairs(kind, dst)
    }

    /// Take this run's staged sorted unique keys (point searches), if
    /// staged.
    pub(crate) fn staged_sorted_keys(&mut self, dst: &mut Vec<Key>) -> bool {
        self.stage.front_mut().take_sorted_keys(dst)
    }

    /// The committed [`crate::Op`] stream recorded by
    /// [`PimSkipList::try_execute`] (empty unless
    /// [`Config::record_op_log`] is set).
    pub fn op_log(&self) -> &[crate::op::Op] {
        self.journal.op_log()
    }

    /// The replicated root handle.
    pub(crate) fn root(&self) -> Handle {
        Handle::replicated(u32::from(self.cfg.max_level))
    }

    /// The replicated −∞ leaf handle.
    pub(crate) fn inf_leaf(&self) -> Handle {
        Handle::replicated(0)
    }

    /// The module hosting lower-part node `(key, level)`.
    pub(crate) fn module_of(&self, key: Key, level: u8) -> ModuleId {
        hashfn::module_of(self.cfg.seed, key, level, self.cfg.p)
    }

    /// A uniformly random module (search entry points).
    pub(crate) fn random_module(&mut self) -> ModuleId {
        self.rng.below(u64::from(self.cfg.p)) as ModuleId
    }

    /// Route a write-style task to the module(s) owning `target`:
    /// replicated targets are broadcast (one write per replica), local
    /// targets unicast.
    pub(crate) fn send_write(&mut self, target: Handle, task: Task) {
        if target.is_replicated() {
            self.sys.broadcast(|_| task.clone());
        } else {
            self.sys.send(target.module(), task);
        }
    }

    /// CPU-side inspection of any node (tests, invariants, experiments —
    /// not a model data path; replicas are read from module 0).
    pub(crate) fn inspect(&self, h: Handle) -> &Node {
        if h.is_replicated() {
            self.sys.module(0).node(h)
        } else {
            self.sys.module(h.module()).node(h)
        }
    }

    /// Inspect a replica as seen by a *specific* module (per-module fields
    /// such as `next_leaf`).
    pub(crate) fn inspect_at(&self, module: ModuleId, h: Handle) -> &Node {
        self.sys.module(module).node(h)
    }

    /// Drain module contention counters and return the max count (Lemma
    /// 4.2 instrumentation).
    pub(crate) fn take_max_contention(&mut self) -> u32 {
        let mut max = 0;
        for id in 0..self.cfg.p {
            let counts = self.sys.module_mut(id).take_contention();
            for (_, c) in counts {
                max = max.max(c);
            }
        }
        max
    }

    /// All `(key, value)` pairs in key order, read via CPU inspection of
    /// the level-0 chain (test oracle; does not touch the network).
    pub fn collect_items(&self) -> Vec<(Key, Value)> {
        let mut out = Vec::new();
        let mut cur = self.inspect(self.inf_leaf()).right;
        while cur.is_some() {
            let n = self.inspect(cur);
            out.push((n.key, n.value));
            cur = n.right;
        }
        out
    }

    /// All `(key, value)` pairs in key order, fetched **through the model's
    /// data path** (a full-domain broadcast range read) rather than by CPU
    /// inspection — the public export entry point, fully metered.
    pub fn export(&mut self) -> Vec<(Key, Value)> {
        if self.cfg.h_low == 0 {
            // Full-replication ablation: no local leaf lists to stream
            // from; fall back to inspection (documented limitation).
            return self.collect_items();
        }
        self.range_broadcast(Key::MIN + 1, Key::MAX, crate::tasks::RangeFunc::Read)
            .items
    }

    /// Convenience single-key get (wraps a singleton batch; real workloads
    /// should use [`PimSkipList::batch_get`] with the paper's batch sizes).
    pub fn get(&mut self, key: Key) -> Option<Value> {
        self.batch_get(&[key]).pop().expect("singleton batch")
    }

    /// Convenience single-pair upsert.
    pub fn upsert(&mut self, key: Key, value: Value) {
        self.batch_upsert(&[(key, value)]);
    }

    /// Convenience single-key delete; returns whether the key was present.
    pub fn delete(&mut self, key: Key) -> bool {
        self.batch_delete(&[key]).pop().expect("singleton batch")
    }

    /// Load many pairs by running batched upserts of the paper's preferred
    /// size (`P log² P`).
    pub fn load(&mut self, pairs: &[(Key, Value)]) {
        let chunk = self.cfg.batch_large().max(1);
        for c in pairs.chunks(chunk) {
            self.batch_upsert(c);
        }
    }
}

impl PimSkipList {
    /// Drain one module's contention counters (experiment instrumentation;
    /// returns `(handle bits, access count)` pairs recorded since the last
    /// drain). Only populated when [`Config::track_contention`] is set or
    /// [`PimSkipList::set_module_contention_tracking`] was called.
    pub fn drain_contention(
        &mut self,
        module: pim_runtime::ModuleId,
    ) -> std::collections::HashMap<u64, u32> {
        self.sys.module_mut(module).take_contention()
    }

    /// Toggle module-side access counting without touching the driver's
    /// per-phase draining (which stays keyed on the construction-time
    /// [`Config::track_contention`]). With the driver drain off, counts
    /// accumulate until [`PimSkipList::drain_contention`] — the §3.1
    /// path-split probe reads whole search paths this way.
    pub fn set_module_contention_tracking(&mut self, on: bool) {
        for id in 0..self.cfg.p {
            self.sys.module_mut(id).set_contention_tracking(on);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_structure_has_sentinel_only() {
        let list = PimSkipList::new(Config::new(4, 64, 1));
        assert_eq!(list.len(), 0);
        assert!(list.collect_items().is_empty());
        let root = list.inspect(list.root());
        assert_eq!(root.key, crate::config::NEG_INF);
        assert!(root.right.is_null());
    }

    #[test]
    fn sentinel_tower_is_wired_vertically() {
        let list = PimSkipList::new(Config::new(4, 64, 1));
        let mut cur = list.root();
        let mut levels = 0;
        loop {
            let n = list.inspect(cur);
            levels += 1;
            if n.down.is_null() {
                assert_eq!(n.level, 0);
                break;
            }
            cur = n.down;
        }
        assert_eq!(levels, u32::from(list.cfg.max_level) + 1);
    }

    #[test]
    fn space_accounting_counts_sentinels() {
        let list = PimSkipList::new(Config::new(8, 64, 1));
        let words = list.space_per_module();
        assert_eq!(words.len(), 8);
        assert!(words.iter().all(|&w| w > 0));
    }
}
