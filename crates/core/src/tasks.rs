//! The `TaskSend` protocol of the PIM skip list.
//!
//! Every variant corresponds to a constant-size message of the model
//! (function id + arguments; the few `Vec` payloads are CPU-side broadcast
//! batches whose length is already charged as separate messages by the
//! driver). Tasks are executed by [`crate::module::SkipModule`]; replies
//! land in CPU shared memory.

use pim_runtime::{Handle, ModuleId};

use crate::config::{Key, Value};
use crate::node::Node;

/// Operation id used by [`Reply::Faulted`] when the failed task carried no
/// batch-local id (pure write tasks such as `WriteRight` or `FreeNode`).
pub const NO_OP: u32 = u32::MAX;

/// What a search should report back (§4.2 vs. §4.3 usage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Point query: report the level-0 predecessor and successor only.
    Point,
    /// Insert support: additionally report the per-level predecessor and
    /// its right neighbour for every level `1..=top` (level 0 arrives via
    /// [`Reply::SearchDone`]).
    PredLevels {
        /// Top tower level of the key being inserted.
        top: u8,
    },
}

/// The function applied by a `RangeOperation` (§5).
///
/// `Read`/`FetchAdd` return one message per pair (the paper's "values can
/// be returned in `O(K/P)` whp IO time"); `Count`/`Sum` are the associative
/// reductions the paper notes can be folded inside the PIM modules;
/// `AddInPlace` writes without returning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RangeFunc {
    /// Return every `(key, value)` in range.
    Read,
    /// Count pairs in range (reduced per module/fragment).
    Count,
    /// Sum values in range (reduced per module/fragment).
    Sum,
    /// Minimum value in range (reduced per module/fragment).
    Min,
    /// Maximum value in range (reduced per module/fragment).
    Max,
    /// Atomically add `delta` to each value, returning the old values.
    FetchAdd(u64),
    /// Add `delta` to each value, returning nothing.
    AddInPlace(u64),
}

impl RangeFunc {
    /// Does this function return one message per visited pair?
    pub fn returns_items(self) -> bool {
        matches!(self, RangeFunc::Read | RangeFunc::FetchAdd(_))
    }
}

/// Tasks executed on PIM modules.
#[derive(Debug, Clone)]
pub enum Task {
    // ----- §4.1: hash-shortcut point operations -----
    /// Look `key` up in the module's local index.
    Get {
        /// Batch-local operation id.
        op: u32,
        /// Key to fetch.
        key: Key,
    },
    /// Update `key` in place if present.
    Update {
        /// Batch-local operation id.
        op: u32,
        /// Key to update.
        key: Key,
        /// New value.
        value: Value,
    },

    /// Dereference a node pointer: return its `(key, value)` (the model's
    /// "tasks specify a shared-memory address to write back the task's
    /// return value" — used to read through handles returned by
    /// Successor/Predecessor).
    ReadNode {
        /// Batch-local operation id.
        op: u32,
        /// The node to read (resolvable at the receiver).
        node: Handle,
    },

    // ----- §4.2: search -----
    /// Continue a skip-list search from `at` (resolvable at the receiver).
    Search {
        /// Batch-local operation id.
        op: u32,
        /// Search key.
        key: Key,
        /// Node to continue from.
        at: Handle,
        /// What to report.
        mode: SearchMode,
        /// Stream the visited lower-part nodes back to shared memory
        /// (pivot path recording).
        record_path: bool,
        /// Additionally stream visited *replicated* nodes (push-pull cache
        /// warming only — the driver counts them but never adds them to
        /// recorded paths). Always `false` with push-pull off.
        record_upper: bool,
    },

    /// Push-pull cache refresh (PIM-tree variant of §4.2): read one
    /// lower-part node's search-relevant fields into the CPU-side
    /// hot-node cache. Sent unicast to the owning module; replies with
    /// [`Reply::NodeRec`] (or [`Reply::Faulted`] for a dangling handle —
    /// the pull is best-effort and the driver simply skips that record).
    PullNode {
        /// The node to snapshot (lower part, resolvable at the receiver).
        at: Handle,
    },

    // ----- §4.3: batched Upsert -----
    /// Allocate a lower-part node for `key` at `level` in this module.
    AllocLower {
        /// Batch-local operation id.
        op: u32,
        /// Key of the new tower.
        key: Key,
        /// Value (meaningful at level 0).
        value: Value,
        /// Node level.
        level: u8,
    },
    /// Broadcast: materialise an upper-part replica at `slot`.
    AllocUpper {
        /// Replicated-arena slot chosen by the CPU shadow allocator.
        slot: u32,
        /// Key of the new tower.
        key: Key,
        /// Node level.
        level: u8,
        /// Stored value (meaningful only for the `h_low = 0` ablation,
        /// where level-0 nodes are replicated).
        value: Value,
    },
    /// Set a node's vertical pointers.
    WireVertical {
        /// Target node (local to receiver, or replica).
        node: Handle,
        /// Upward pointer value.
        up: Handle,
        /// Downward pointer value.
        down: Handle,
    },
    /// Broadcast: recompute the per-module `next_leaf` shortcut of a newly
    /// linked upper-part leaf (post-Algorithm-1 round of batched Upsert).
    FixNextLeaf {
        /// Replicated slot of the new upper leaf.
        slot: u32,
    },
    /// Record a leaf's tower chain (Insert step 5).
    SetLeafChain {
        /// The leaf.
        leaf: Handle,
        /// Handles of levels `1..=top`, bottom-up.
        chain: Vec<Handle>,
    },
    /// `RemoteWrite(node.right, to)` — with the cached key maintained.
    WriteRight {
        /// Node whose `right` is written.
        node: Handle,
        /// New right neighbour.
        to: Handle,
        /// `to`'s key (cache maintenance).
        to_key: Key,
    },
    /// `RemoteWrite(node.left, to)`.
    WriteLeft {
        /// Node whose `left` is written.
        node: Handle,
        /// New left neighbour.
        to: Handle,
    },
    /// `RemoteWrite(node.value, value)` — CPU-side write-back of range
    /// updates (§5.2 step 4).
    WriteValue {
        /// Target leaf.
        node: Handle,
        /// New value.
        value: Value,
    },

    // ----- §4.4: batched Delete -----
    /// Delete `key` from this module via the local index; marks the leaf,
    /// unlinks it from the local leaf list, and fans out `MarkNode`s.
    DeleteKey {
        /// Batch-local operation id.
        op: u32,
        /// Key to delete.
        key: Key,
    },
    /// Mark one lower-part tower node deleted and report its links.
    MarkNode {
        /// Batch-local operation id.
        op: u32,
        /// The node to mark.
        node: Handle,
    },
    /// Broadcast: splice the given replicated slots out of the upper part
    /// and free them (in the given order, identically on every module).
    UnlinkUpper {
        /// Slots to unlink, CPU-ordered.
        slots: Vec<u32>,
    },
    /// Free a spliced-out lower-part node.
    FreeNode {
        /// The node to free.
        node: Handle,
    },

    // ----- §5: range operations -----
    /// Broadcast flavour (§5.1): apply `func` to this module's local pairs
    /// within `[lo, hi]`.
    RangeBroadcast {
        /// Batch-local operation id.
        op: u32,
        /// Inclusive lower bound.
        lo: Key,
        /// Inclusive upper bound.
        hi: Key,
        /// Function to apply.
        func: RangeFunc,
    },
    /// Tree flavour (§5.2): fan down the search area from `at`, covering
    /// keys in `[lo, hi]` (both already clipped to this subtree).
    RangeDescend {
        /// Batch-local (sub)operation id.
        op: u32,
        /// Node to continue from.
        at: Handle,
        /// Inclusive lower bound.
        lo: Key,
        /// Inclusive upper bound (already min-ed with the subtree's span).
        hi: Key,
        /// Function to apply at leaves.
        func: RangeFunc,
    },

    // ----- crash recovery (driver-side rebuild of a wiped module) -----
    /// Recovery: install a complete upper-part node image at `slot`,
    /// replacing whatever the slot holds (sent unicast to the module being
    /// rebuilt; the image is computed CPU-side from the journal, so the
    /// replica matches the healthy modules bit for bit).
    InstallUpper {
        /// Replicated-arena slot to (re)populate.
        slot: u32,
        /// Full node image.
        node: Node,
    },
    /// Recovery: install a lower-part node image at the exact local slot it
    /// occupied before the crash (handles held by other modules keep
    /// resolving).
    InstallLower {
        /// Local-arena slot to (re)populate.
        slot: u32,
        /// Full node image.
        node: Node,
    },
    /// Recovery finaliser: rebuild the module's derived local views (hash
    /// index, local leaf list, `next_leaf` shortcuts) from the installed
    /// nodes, then acknowledge with [`Reply::Recovered`].
    RecoverLocal,
}

/// Replies returned to CPU shared memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// A dereferenced node.
    NodeValue {
        /// Operation id.
        op: u32,
        /// The node's key.
        key: Key,
        /// The node's value.
        value: Value,
    },
    /// Get result.
    GotValue {
        /// Operation id.
        op: u32,
        /// The value, if the key was present.
        value: Option<Value>,
    },
    /// Update result.
    Updated {
        /// Operation id.
        op: u32,
        /// Whether the key was present.
        found: bool,
    },
    /// One visited lower-part node on a recorded search path (in visit
    /// order; one message per node, §4.2 stage 1).
    PathNode {
        /// Operation id.
        op: u32,
        /// The visited node.
        node: Handle,
    },
    /// Snapshot of one lower-part node's search-relevant fields, answering
    /// [`Task::PullNode`]. No op id: the handle itself identifies the
    /// record in the driver's pull wave. Values are deliberately absent —
    /// `Update`/`FetchAdd` never invalidate the cache.
    NodeRec {
        /// The snapshotted node.
        node: Handle,
        /// Its key.
        key: Key,
        /// Right neighbour at snapshot time.
        right: Handle,
        /// Cached right key at snapshot time.
        right_key: Key,
        /// Downward pointer at snapshot time.
        down: Handle,
        /// Node level.
        level: u8,
    },
    /// Per-level predecessor for an insert search.
    PredAt {
        /// Operation id.
        op: u32,
        /// Level this report is for.
        level: u8,
        /// Rightmost node with key `< search key` at `level`.
        pred: Handle,
        /// `pred`'s right neighbour at search time.
        succ: Handle,
        /// `succ`'s key (cache maintenance for Algorithm 1's writes).
        succ_key: Key,
    },
    /// Terminal search report (level 0).
    SearchDone {
        /// Operation id.
        op: u32,
        /// Level-0 predecessor (key `<` search key).
        pred: Handle,
        /// Its key.
        pred_key: Key,
        /// Level-0 successor (key `≥` search key; null at list end).
        succ: Handle,
        /// Its key (`POS_INF` when null).
        succ_key: Key,
    },
    /// A lower-part node was allocated.
    Alloced {
        /// Operation id.
        op: u32,
        /// Node level.
        level: u8,
        /// The new node's handle.
        node: Handle,
    },
    /// A `DeleteKey` hit a missing key.
    DeleteMissing {
        /// Operation id.
        op: u32,
    },
    /// A node was marked deleted (leaf or tower node).
    Marked {
        /// Operation id.
        op: u32,
        /// The marked node.
        node: Handle,
        /// Its level.
        level: u8,
        /// Its key.
        key: Key,
        /// Left neighbour at marking time.
        left: Handle,
        /// Right neighbour at marking time.
        right: Handle,
        /// Cached right key at marking time.
        right_key: Key,
        /// For leaves: replicated slots of the tower's upper nodes (empty
        /// otherwise) — batched by the CPU into one `UnlinkUpper`.
        upper_slots: Vec<u32>,
        /// For leaves: the deleted value.
        value: Value,
    },
    /// One `(key, value)` produced by a range function.
    RangeItem {
        /// Operation id.
        op: u32,
        /// The leaf holding the pair (for CPU-side write-back).
        node: Handle,
        /// Pair key.
        key: Key,
        /// Pair value (old value for `FetchAdd`).
        value: Value,
    },
    /// An aggregated range fragment (Count/Sum/Min/Max).
    RangeAgg {
        /// Operation id.
        op: u32,
        /// Pairs visited by this fragment.
        count: u64,
        /// Sum of values visited by this fragment.
        sum: u64,
        /// Minimum value visited (`u64::MAX` when none).
        min: Value,
        /// Maximum value visited (`0` when none).
        max: Value,
    },
    /// The module could not execute a task because local state it needed is
    /// missing (e.g. a dangling handle after a crash wiped the module).
    /// The driver treats this as a recoverable loss, never an answer.
    Faulted {
        /// The failed task's operation id, or [`NO_OP`] for pure writes.
        op: u32,
    },
    /// A [`Task::RecoverLocal`] completed: the module's derived views are
    /// rebuilt and it is ready to serve traffic again.
    Recovered {
        /// The recovered module.
        module: ModuleId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_func_return_classification() {
        assert!(RangeFunc::Read.returns_items());
        assert!(RangeFunc::FetchAdd(1).returns_items());
        assert!(!RangeFunc::Count.returns_items());
        assert!(!RangeFunc::Sum.returns_items());
        assert!(!RangeFunc::AddInPlace(2).returns_items());
    }
}
