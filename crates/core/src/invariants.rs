//! Structural invariant checking (Fig. 2 / §3.2).
//!
//! [`PimSkipList::validate`] walks the whole machine by CPU-side
//! inspection (no network traffic, test machinery only) and verifies every
//! property the algorithms rely on:
//!
//! 1. the level-0 chain is strictly ascending with correct `right_key`
//!    caches and mirrored `left` pointers, and matches `len()`;
//! 2. every level's chain is a subsequence of the level below, towers are
//!    vertically consistent (`up`/`down`, contiguous levels, same key);
//! 3. the replicated arena is bit-identical across modules in all
//!    *structural* fields (per-module fields — `next_leaf`, local list
//!    links of the −∞ leaf — are exempt by design);
//! 4. nodes live where the hash says: lower node `(key, level)` in module
//!    `hash(key, level)`; levels `≥ h_low` replicated;
//! 5. each module's local leaf list is exactly its owned leaves in
//!    ascending order, with consistent `local_left` mirrors and a correct
//!    tail;
//! 6. every `next_leaf` shortcut of every upper-leaf replica equals the
//!    first local leaf with key `≥` the replica's key;
//! 7. each module's index maps exactly its owned leaf keys to their
//!    handles;
//! 8. every leaf's recorded chain matches its actual tower.

use pim_runtime::Handle;

use crate::config::{NEG_INF, POS_INF};
use crate::list::PimSkipList;

macro_rules! ensure {
    ($cond:expr, $($msg:tt)*) => {
        if !$cond {
            return Err(format!($($msg)*));
        }
    };
}

impl PimSkipList {
    /// Validate all structural invariants; returns the first violation.
    pub fn validate(&self) -> Result<(), String> {
        self.check_horizontal()?;
        self.check_vertical()?;
        self.check_replicas()?;
        self.check_placement()?;
        if self.cfg.h_low > 0 {
            self.check_local_lists()?;
            self.check_next_leaf()?;
        }
        self.check_index()?;
        self.check_journal()?;
        Ok(())
    }

    /// The recovery journal must mirror the logical contents exactly —
    /// anything else means a batch committed without journaling (or vice
    /// versa), which would silently corrupt the next crash recovery.
    fn check_journal(&self) -> Result<(), String> {
        ensure!(
            self.journal.len() as u64 == self.len(),
            "journal holds {} keys but len() = {}",
            self.journal.len(),
            self.len()
        );
        let journaled = self.journal.items_sorted();
        let actual = self.collect_items();
        ensure!(
            journaled == actual,
            "journal snapshot diverges from leaf chain"
        );
        Ok(())
    }

    fn check_horizontal(&self) -> Result<(), String> {
        let mut keys_below: Option<Vec<i64>> = None;
        for level in 0..=self.cfg.max_level {
            // The −∞ node at `level` heads the chain (replicated slot =
            // level, fixed convention).
            let mut cur = Handle::replicated(u32::from(level));
            let mut keys = Vec::new();
            let mut prev_handle = Handle::NULL;
            let mut prev_key = NEG_INF;
            loop {
                let n = self.inspect(cur);
                ensure!(
                    n.level == level,
                    "level-{level} chain reached a level-{} node",
                    n.level
                );
                ensure!(!n.deleted, "level-{level} chain contains tombstone {cur:?}");
                if prev_handle.is_some() {
                    ensure!(
                        n.key > prev_key,
                        "level-{level} chain not ascending at key {}",
                        n.key
                    );
                    ensure!(
                        n.left == prev_handle,
                        "left pointer mismatch at level {level} key {}",
                        n.key
                    );
                }
                if n.key != NEG_INF {
                    keys.push(n.key);
                }
                let expected_rk = if n.right.is_some() {
                    self.inspect(n.right).key
                } else {
                    POS_INF
                };
                ensure!(
                    n.right_key == expected_rk,
                    "stale right_key at level {level} key {}: {} vs {}",
                    n.key,
                    n.right_key,
                    expected_rk
                );
                prev_handle = cur;
                prev_key = n.key;
                if n.right.is_null() {
                    break;
                }
                cur = n.right;
            }
            if level == 0 {
                ensure!(
                    keys.len() as u64 == self.len(),
                    "len() = {} but the leaf chain has {} keys",
                    self.len(),
                    keys.len()
                );
            }
            if let Some(below) = &keys_below {
                // keys at this level ⊆ keys below.
                let mut it = below.iter();
                for k in &keys {
                    ensure!(
                        it.any(|b| b == k),
                        "key {k} at level {level} missing from level {}",
                        level - 1
                    );
                }
            }
            keys_below = Some(keys);
        }
        Ok(())
    }

    fn check_vertical(&self) -> Result<(), String> {
        // Walk the leaf chain; follow each tower upward.
        let mut cur = self.inf_leaf();
        loop {
            let leaf = self.inspect(cur);
            let mut below = cur;
            let mut chain_seen = Vec::new();
            let mut up = leaf.up;
            while up.is_some() {
                let n = self.inspect(up);
                ensure!(
                    n.key == leaf.key,
                    "tower of {} contains key {}",
                    leaf.key,
                    n.key
                );
                ensure!(
                    n.down == below,
                    "down pointer broken in tower of {} at level {}",
                    leaf.key,
                    n.level
                );
                ensure!(
                    n.level == self.inspect(below).level + 1,
                    "tower of {} skips a level at {}",
                    leaf.key,
                    n.level
                );
                chain_seen.push(up);
                below = up;
                up = n.up;
            }
            if leaf.key != NEG_INF {
                ensure!(
                    leaf.chain == chain_seen,
                    "leaf {} chain record {:?} != actual tower {:?}",
                    leaf.key,
                    leaf.chain,
                    chain_seen
                );
            }
            if leaf.right.is_null() {
                break;
            }
            cur = leaf.right;
        }
        Ok(())
    }

    fn check_replicas(&self) -> Result<(), String> {
        let reference: Vec<(u32, _)> = self
            .sys
            .module(0)
            .upper
            .iter()
            .map(|(s, n)| (s, n.clone()))
            .collect();
        for m in 1..self.p() {
            let module = self.sys.module(m);
            let mut count = 0usize;
            for (slot, n) in module.upper.iter() {
                count += 1;
                let Some((_, r)) = reference.iter().find(|(s, _)| *s == slot) else {
                    return Err(format!("module {m} has extra replica at slot {slot}"));
                };
                let structural_equal = r.key == n.key
                    && r.value == n.value
                    && r.level == n.level
                    && r.left == n.left
                    && r.right == n.right
                    && r.up == n.up
                    && r.down == n.down
                    && r.right_key == n.right_key
                    && r.deleted == n.deleted
                    && r.chain == n.chain;
                ensure!(
                    structural_equal,
                    "replica divergence at slot {slot} between modules 0 and {m}"
                );
            }
            ensure!(
                count == reference.len(),
                "module {m} holds {count} replicas, module 0 holds {}",
                reference.len()
            );
        }
        Ok(())
    }

    fn check_placement(&self) -> Result<(), String> {
        let mut cur = self.inf_leaf();
        loop {
            let leaf = self.inspect(cur);
            if leaf.key != NEG_INF {
                // Leaf placement.
                if self.cfg.h_low > 0 {
                    ensure!(
                        !cur.is_replicated(),
                        "leaf {} replicated despite h_low > 0",
                        leaf.key
                    );
                    ensure!(
                        cur.module() == self.module_of(leaf.key, 0),
                        "leaf {} on module {} but hashes to {}",
                        leaf.key,
                        cur.module(),
                        self.module_of(leaf.key, 0)
                    );
                }
                // Tower placement.
                for &h in &leaf.chain {
                    let n = self.inspect(h);
                    if n.level >= self.cfg.h_low {
                        ensure!(
                            h.is_replicated(),
                            "upper-part node of {} at level {} not replicated",
                            leaf.key,
                            n.level
                        );
                    } else {
                        ensure!(
                            h.module() == self.module_of(leaf.key, n.level),
                            "tower node of {} at level {} misplaced",
                            leaf.key,
                            n.level
                        );
                    }
                }
            }
            if leaf.right.is_null() {
                break;
            }
            cur = leaf.right;
        }
        Ok(())
    }

    fn check_local_lists(&self) -> Result<(), String> {
        for m in 0..self.p() {
            // Owned leaves, from the lower arena.
            let mut owned: Vec<(i64, Handle)> = self
                .sys
                .module(m)
                .lower
                .iter()
                .filter(|(_, n)| n.level == 0 && !n.deleted)
                .map(|(s, n)| (n.key, Handle::local(m, s)))
                .collect();
            owned.sort_unstable();
            // Walk the local list.
            let mut walked = Vec::new();
            let mut prev = self.inf_leaf();
            let mut cur = self.inspect_at(m, self.inf_leaf()).local_right;
            while cur.is_some() {
                let n = self.inspect_at(m, cur);
                ensure!(
                    n.local_left == prev,
                    "module {m}: local_left mismatch at key {}",
                    n.key
                );
                walked.push((n.key, cur));
                prev = cur;
                cur = n.local_right;
            }
            ensure!(
                walked == owned,
                "module {m}: local leaf list {:?} != owned leaves {:?}",
                walked.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
                owned.iter().map(|(k, _)| *k).collect::<Vec<_>>()
            );
            let tail = self.sys.module(m).leaf_tail;
            let expect_tail = walked.last().map(|&(_, h)| h).unwrap_or(self.inf_leaf());
            ensure!(
                tail == expect_tail,
                "module {m}: stale leaf_tail {tail:?}, expected {expect_tail:?}"
            );
        }
        Ok(())
    }

    fn check_next_leaf(&self) -> Result<(), String> {
        for m in 0..self.p() {
            // All upper-leaf replicas (level == h_low).
            let module = self.sys.module(m);
            let owned: Vec<(i64, Handle)> = {
                let mut v: Vec<(i64, Handle)> = module
                    .lower
                    .iter()
                    .filter(|(_, n)| n.level == 0 && !n.deleted)
                    .map(|(s, n)| (n.key, Handle::local(m, s)))
                    .collect();
                v.sort_unstable();
                v
            };
            for (slot, n) in module.upper.iter() {
                if n.level != self.cfg.h_low {
                    continue;
                }
                let expect = owned
                    .iter()
                    .find(|&&(k, _)| k >= n.key)
                    .map(|&(_, h)| h)
                    .unwrap_or(Handle::NULL);
                ensure!(
                    n.next_leaf == expect,
                    "module {m}: next_leaf of upper leaf {} (slot {slot}) is {:?}, expected {expect:?}",
                    n.key,
                    n.next_leaf
                );
            }
        }
        Ok(())
    }

    fn check_index(&self) -> Result<(), String> {
        for m in 0..self.p() {
            let owned: Vec<(i64, Handle)> = self
                .sys
                .module(m)
                .lower
                .iter()
                .filter(|(_, n)| n.level == 0 && !n.deleted)
                .map(|(s, n)| (n.key, Handle::local(m, s)))
                .collect();
            // The index is mutable-API only; clone it for inspection.
            let mut index = self.sys.module(m).index.clone();
            ensure!(
                if self.cfg.h_low > 0 {
                    index.len() == owned.len()
                } else {
                    true
                },
                "module {m}: index holds {} keys, owns {}",
                index.len(),
                owned.len()
            );
            for &(k, h) in &owned {
                ensure!(
                    index.get(k) == Some(h.to_bits()),
                    "module {m}: index lookup of {k} failed"
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use pim_runtime::Handle;

    use crate::config::{Config, POS_INF};
    use crate::list::PimSkipList;

    fn build() -> PimSkipList {
        let mut list = PimSkipList::new(Config::new(4, 1 << 10, 31));
        let pairs: Vec<(i64, u64)> = (0..200).map(|i| (i * 4, i as u64)).collect();
        list.batch_upsert(&pairs);
        list.validate().expect("fresh structure valid");
        list
    }

    /// Find some lower-part leaf handle for corruption tests.
    fn some_leaf(list: &PimSkipList) -> Handle {
        for m in 0..list.p() {
            if let Some((slot, _)) = list
                .sys
                .module(m)
                .lower
                .iter()
                .find(|(_, n)| n.level == 0 && !n.deleted)
            {
                return Handle::local(m, slot);
            }
        }
        panic!("no leaf found");
    }

    #[test]
    fn detects_stale_right_key_cache() {
        let mut list = build();
        let leaf = some_leaf(&list);
        let m = leaf.module();
        list.sys.module_mut(m).node_mut(leaf).right_key = POS_INF - 1;
        let err = list.validate().unwrap_err();
        assert!(err.contains("right_key"), "got: {err}");
    }

    #[test]
    fn detects_broken_left_mirror() {
        let mut list = build();
        let leaf = some_leaf(&list);
        let m = leaf.module();
        list.sys.module_mut(m).node_mut(leaf).left = Handle::NULL;
        let err = list.validate().unwrap_err();
        assert!(
            err.contains("left pointer") || err.contains("local_left"),
            "got: {err}"
        );
    }

    #[test]
    fn detects_replica_divergence() {
        let mut list = build();
        // Corrupt module 2's copy of the root.
        let root = list.root();
        list.sys.module_mut(2).node_mut(root).right_key = 12345;
        let err = list.validate().unwrap_err();
        assert!(
            err.contains("divergence") || err.contains("right_key"),
            "got: {err}"
        );
    }

    #[test]
    fn detects_len_drift() {
        let mut list = build();
        list.len += 1;
        let err = list.validate().unwrap_err();
        assert!(err.contains("len()"), "got: {err}");
    }

    #[test]
    fn detects_local_list_corruption() {
        let mut list = build();
        let leaf = some_leaf(&list);
        let m = leaf.module();
        list.sys.module_mut(m).node_mut(leaf).local_right = leaf; // self-loop... would hang; use NULL instead
        list.sys.module_mut(m).node_mut(leaf).local_right = Handle::NULL;
        let err = list.validate().unwrap_err();
        assert!(
            err.contains("local leaf list")
                || err.contains("local_left")
                || err.contains("leaf_tail"),
            "got: {err}"
        );
    }

    #[test]
    fn detects_index_corruption() {
        let mut list = build();
        let leaf = some_leaf(&list);
        let key = list.inspect(leaf).key;
        let m = leaf.module();
        list.sys.module_mut(m).index.remove(key);
        let err = list.validate().unwrap_err();
        assert!(err.contains("index"), "got: {err}");
    }

    #[test]
    fn detects_tombstone_in_chain() {
        let mut list = build();
        let leaf = some_leaf(&list);
        let m = leaf.module();
        list.sys.module_mut(m).node_mut(leaf).deleted = true;
        let err = list.validate().unwrap_err();
        assert!(
            err.contains("tombstone") || err.contains("local leaf list") || err.contains("index"),
            "got: {err}"
        );
    }
}
