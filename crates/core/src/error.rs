//! Typed errors of the fault-tolerant driver paths.
//!
//! The plain batch API (`batch_get`, `batch_upsert`, …) keeps its
//! infallible signatures — on a fault-free machine none of these errors
//! can occur, and the plain entry points panic on the (impossible)
//! failure with the typed error's message. The `try_*` entry points
//! surface the same conditions as values, which is what the recovery
//! layer needs: a lost reply or a crashed module is an *expected* event
//! under an installed [`pim_runtime::FaultPlan`], and the driver retries,
//! rebuilds, or reports instead of tearing the process down.

use std::error::Error;
use std::fmt;

/// Driver-visible failures of a batch operation on the PIM machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PimError {
    /// The bounded retry/recovery loop gave up: every attempt (including
    /// the recovery rebuilds between them) kept losing messages or
    /// modules. The structure has been restored to a journal-consistent
    /// state, but the requested batch is not applied.
    RetriesExhausted {
        /// The operation that gave up.
        op: &'static str,
        /// Attempts made (initial try + retries).
        attempts: u32,
    },
    /// A quiescent period ended with replies missing (dropped tasks or
    /// replies, or a module answered [`crate::tasks::Reply::Faulted`]).
    /// Transient: the retry wrappers recover and re-issue.
    Incomplete {
        /// The operation that observed the loss.
        op: &'static str,
        /// How many expected records never arrived (0 when the loss was
        /// signalled by a `Faulted` reply rather than by absence).
        missing: usize,
    },
    /// The request itself is invalid for this configuration (e.g. a
    /// broadcast range operation on an `h_low = 0` structure, which has
    /// no local leaf lists to stream from).
    InvalidArgument {
        /// The rejecting operation.
        op: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// A reply arrived that the operation's protocol cannot produce —
    /// on a fault-free machine this is a driver bug, under faults it is
    /// treated like [`PimError::Incomplete`] by the retry wrappers.
    Protocol {
        /// The operation that received the reply.
        op: &'static str,
        /// Debug rendering of the offending reply.
        detail: String,
    },
    /// An operating-system IO failure in the durability layer (WAL append,
    /// fsync, snapshot rename, manifest read). Carries enough context to
    /// name the exact file the kernel refused.
    Io {
        /// The durability operation that failed (`"wal_append"`,
        /// `"snapshot_write"`, …).
        op: &'static str,
        /// Path of the file or directory involved.
        path: String,
        /// The OS error, rendered (`std::io::Error` is not `Clone`/`Eq`,
        /// which [`PimError`] requires).
        detail: String,
    },
    /// On-disk state failed an integrity check during recovery: a frame,
    /// snapshot, or manifest whose checksum does not match its contents.
    /// A *tail* corruption of the WAL is handled silently (recovery
    /// truncates to the last valid frame); this error is reserved for
    /// corruption that loses committed history — e.g. the live snapshot is
    /// damaged and the WAL it compacted is already deleted.
    Corruption {
        /// Path of the corrupt file.
        path: String,
        /// Byte offset of the failing record within the file.
        offset: u64,
        /// Checksum the record claimed.
        expected: u32,
        /// Checksum its bytes actually hash to.
        found: u32,
        /// What was being decoded (`"wal frame"`, `"snapshot"`, …).
        detail: String,
    },
    /// An operation routed to a cluster shard that is down (crashed and
    /// not yet rebuilt). The op stream aborts at the failing run's
    /// boundary — earlier runs are committed — and every other shard
    /// keeps serving; rebuild the shard from its durable directory to
    /// resume.
    ShardDown {
        /// Stable id of the down shard.
        shard: u32,
    },
}

/// Result alias used by the fault-tolerant driver paths.
pub type PimResult<T> = Result<T, PimError>;

impl PimError {
    pub(crate) fn incomplete(op: &'static str, missing: usize) -> Self {
        PimError::Incomplete { op, missing }
    }

    pub(crate) fn protocol(op: &'static str, detail: impl fmt::Debug) -> Self {
        PimError::Protocol {
            op,
            detail: format!("{detail:?}"),
        }
    }

    pub(crate) fn io(op: &'static str, path: &std::path::Path, err: &std::io::Error) -> Self {
        PimError::Io {
            op,
            path: path.display().to_string(),
            detail: err.to_string(),
        }
    }

    /// Is this error transient, i.e. worth a recovery-and-retry cycle?
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            PimError::Incomplete { .. } | PimError::Protocol { .. }
        )
    }
}

impl fmt::Display for PimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PimError::RetriesExhausted { op, attempts } => {
                write!(f, "{op}: retries exhausted after {attempts} attempts")
            }
            PimError::Incomplete { op, missing } => {
                write!(f, "{op}: incomplete batch ({missing} records missing)")
            }
            PimError::InvalidArgument { op, reason } => write!(f, "{op}: {reason}"),
            PimError::Protocol { op, detail } => {
                write!(f, "{op}: protocol violation ({detail})")
            }
            PimError::Io { op, path, detail } => {
                write!(f, "{op}: io error on {path}: {detail}")
            }
            PimError::Corruption {
                path,
                offset,
                expected,
                found,
                detail,
            } => {
                write!(
                    f,
                    "corrupt {detail} in {path} at offset {offset}: \
                     checksum expected {expected:#010x}, found {found:#010x}"
                )
            }
            PimError::ShardDown { shard } => {
                write!(f, "shard {shard} is down; rebuild it to resume")
            }
        }
    }
}

impl Error for PimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PimError::RetriesExhausted {
            op: "batch_get",
            attempts: 4,
        };
        assert!(e.to_string().contains("batch_get"));
        assert!(e.to_string().contains('4'));
        assert!(!e.is_transient());
        assert!(PimError::incomplete("x", 2).is_transient());
        assert!(PimError::protocol("x", "y").is_transient());
        assert!(!PimError::InvalidArgument {
            op: "range_broadcast",
            reason: "h_low = 0".into()
        }
        .is_transient());
    }

    #[test]
    fn io_and_corruption_carry_context() {
        let io = PimError::io(
            "wal_append",
            std::path::Path::new("/d/wal-0.log"),
            &std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
        );
        assert!(!io.is_transient(), "io failures are not retried");
        let msg = io.to_string();
        assert!(msg.contains("wal_append"));
        assert!(msg.contains("/d/wal-0.log"));
        assert!(msg.contains("denied"));

        let c = PimError::Corruption {
            path: "/d/snapshot-8.snap".into(),
            offset: 24,
            expected: 0xDEAD_BEEF,
            found: 0x0BAD_F00D,
            detail: "snapshot".into(),
        };
        assert!(!c.is_transient());
        let msg = c.to_string();
        assert!(msg.contains("/d/snapshot-8.snap"));
        assert!(msg.contains("offset 24"));
        assert!(msg.contains("0xdeadbeef"));
        assert!(msg.contains("0x0badf00d"));
        // The std::error::Error impl is uniform across variants.
        let _: &dyn std::error::Error = &c;
    }
}
