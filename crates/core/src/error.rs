//! Typed errors of the fault-tolerant driver paths.
//!
//! The plain batch API (`batch_get`, `batch_upsert`, …) keeps its
//! infallible signatures — on a fault-free machine none of these errors
//! can occur, and the plain entry points panic on the (impossible)
//! failure with the typed error's message. The `try_*` entry points
//! surface the same conditions as values, which is what the recovery
//! layer needs: a lost reply or a crashed module is an *expected* event
//! under an installed [`pim_runtime::FaultPlan`], and the driver retries,
//! rebuilds, or reports instead of tearing the process down.

use std::error::Error;
use std::fmt;

/// Driver-visible failures of a batch operation on the PIM machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PimError {
    /// The bounded retry/recovery loop gave up: every attempt (including
    /// the recovery rebuilds between them) kept losing messages or
    /// modules. The structure has been restored to a journal-consistent
    /// state, but the requested batch is not applied.
    RetriesExhausted {
        /// The operation that gave up.
        op: &'static str,
        /// Attempts made (initial try + retries).
        attempts: u32,
    },
    /// A quiescent period ended with replies missing (dropped tasks or
    /// replies, or a module answered [`crate::tasks::Reply::Faulted`]).
    /// Transient: the retry wrappers recover and re-issue.
    Incomplete {
        /// The operation that observed the loss.
        op: &'static str,
        /// How many expected records never arrived (0 when the loss was
        /// signalled by a `Faulted` reply rather than by absence).
        missing: usize,
    },
    /// The request itself is invalid for this configuration (e.g. a
    /// broadcast range operation on an `h_low = 0` structure, which has
    /// no local leaf lists to stream from).
    InvalidArgument {
        /// The rejecting operation.
        op: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// A reply arrived that the operation's protocol cannot produce —
    /// on a fault-free machine this is a driver bug, under faults it is
    /// treated like [`PimError::Incomplete`] by the retry wrappers.
    Protocol {
        /// The operation that received the reply.
        op: &'static str,
        /// Debug rendering of the offending reply.
        detail: String,
    },
}

/// Result alias used by the fault-tolerant driver paths.
pub type PimResult<T> = Result<T, PimError>;

impl PimError {
    pub(crate) fn incomplete(op: &'static str, missing: usize) -> Self {
        PimError::Incomplete { op, missing }
    }

    pub(crate) fn protocol(op: &'static str, detail: impl fmt::Debug) -> Self {
        PimError::Protocol {
            op,
            detail: format!("{detail:?}"),
        }
    }

    /// Is this error transient, i.e. worth a recovery-and-retry cycle?
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            PimError::Incomplete { .. } | PimError::Protocol { .. }
        )
    }
}

impl fmt::Display for PimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PimError::RetriesExhausted { op, attempts } => {
                write!(f, "{op}: retries exhausted after {attempts} attempts")
            }
            PimError::Incomplete { op, missing } => {
                write!(f, "{op}: incomplete batch ({missing} records missing)")
            }
            PimError::InvalidArgument { op, reason } => write!(f, "{op}: {reason}"),
            PimError::Protocol { op, detail } => {
                write!(f, "{op}: protocol violation ({detail})")
            }
        }
    }
}

impl Error for PimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = PimError::RetriesExhausted {
            op: "batch_get",
            attempts: 4,
        };
        assert!(e.to_string().contains("batch_get"));
        assert!(e.to_string().contains('4'));
        assert!(!e.is_transient());
        assert!(PimError::incomplete("x", 2).is_transient());
        assert!(PimError::protocol("x", "y").is_transient());
        assert!(!PimError::InvalidArgument {
            op: "range_broadcast",
            reason: "h_low = 0".into()
        }
        .is_transient());
    }
}
