//! Batched range operations by tree structure (§5.2).
//!
//! Pipeline, following the paper's four steps:
//!
//! 1. **Subrange split** — overlapping batch ranges are cut at all range
//!    endpoints into disjoint ascending *atomic subranges* (at most `2·B`
//!    of them), each tagged with its coverage multiplicity; a CPU sweep
//!    computes both.
//! 2. **Pivot stage** — the pivoted search machinery of §4.2 runs over the
//!    subrange left ends; each subrange inherits a start-node hint (the
//!    LCA of its bracketing pivots' recorded paths).
//! 3. **Search-area descent** — from each hint a `RangeDescend` task fans
//!    down the search area in parallel (a counting pass first, so subrange
//!    sizes are known before any values move).
//! 4. **Grouped execution** — subranges are packed into groups of
//!    `Θ(P log² P)` covered pairs (splitting nothing: oversized subranges
//!    form singleton groups, processed alone); each group's pairs are
//!    fetched to shared memory, the batch's function is applied per
//!    covering operation on the CPU side, and updates are written back
//!    with `RemoteWrite`s.
//!
//! *Documented substitution:* per-leaf indices are assigned by CPU-side
//! sorting of each group (the paper computes them with in-structure
//! leaf-to-root/root-to-leaf prefix-sum passes). The IO/PIM costs are
//! unchanged — the descent already visits exactly the search area — and
//! the CPU-side sort is the same work the paper's own step 4 performs
//! when it applies functions on the CPU side.

use std::collections::HashMap;

use pim_primitives::paths::Hint;
use pim_primitives::prefix::group_by_budget;
use pim_primitives::sort::{par_sort, par_sort_by_key};
use pim_runtime::Handle;

use crate::batch::search::SearchRequest;
use crate::config::{Key, Value};
use crate::error::{PimError, PimResult};
use crate::list::PimSkipList;
use crate::range::broadcast::RangeResult;
use crate::tasks::{RangeFunc, Reply, Task};

/// One atomic subrange after the overlap split.
#[derive(Debug, Clone, Copy)]
struct Subrange {
    lo: Key,
    hi: Key,
    /// Number of batch operations covering this subrange.
    multiplicity: u32,
}

impl PimSkipList {
    /// Execute a batch of range operations `[(lo, hi)]` (inclusive ends),
    /// all applying the same `func` (the model's same-type batch), via the
    /// tree structure (§5.2). Returns one [`RangeResult`] per input range.
    pub fn batch_range(&mut self, ranges: &[(Key, Key)], func: RangeFunc) -> Vec<RangeResult> {
        for &(lo, hi) in ranges {
            assert!(lo <= hi, "inverted range [{lo}, {hi}]");
        }
        assert!(
            self.cfg.h_low > 0
                || matches!(func, RangeFunc::Read | RangeFunc::Count | RangeFunc::Sum | RangeFunc::Min | RangeFunc::Max),
            "mutating range functions require a distributed lower part              (h_low > 0): under full replication a single-module write              would diverge the replicas"
        );
        self.try_batch_range(ranges, func)
            .unwrap_or_else(|e| panic!("batch_range: {e}"))
    }

    /// Fault-tolerant batched range operation; see
    /// [`PimSkipList::batch_range`]. A thin shim over
    /// [`PimSkipList::try_execute`] (where validation and the retry
    /// discipline live): read-only functions retry with per-module
    /// recovery; mutating ones restore from the journal on any damaged
    /// attempt so a partial pass is never applied twice.
    #[doc(hidden)]
    pub fn try_batch_range(
        &mut self,
        ranges: &[(Key, Key)],
        func: RangeFunc,
    ) -> PimResult<Vec<RangeResult>> {
        let ops: Vec<crate::Op> = ranges
            .iter()
            .map(|&(lo, hi)| crate::Op::Range { lo, hi, func })
            .collect();
        let replies = self.try_execute(&ops)?;
        Ok(replies
            .into_iter()
            .map(|r| match r {
                crate::Reply::Range(res) => res,
                other => unreachable!("Range run answered {other:?}"),
            })
            .collect())
    }

    /// One fault-observable attempt of [`PimSkipList::batch_range`].
    pub(crate) fn batch_range_attempt(
        &mut self,
        ranges: &[(Key, Key)],
        func: RangeFunc,
    ) -> PimResult<Vec<RangeResult>> {
        self.spanned("range_tree", |s| {
            let staged = ranges.len() as u64 * 4;
            s.sys.shared_mem().alloc(staged);
            let out = s.batch_range_attempt_inner(ranges, func);
            s.sys.sample_shared_mem();
            s.sys.shared_mem().free(staged);
            out
        })
    }

    fn batch_range_attempt_inner(
        &mut self,
        ranges: &[(Key, Key)],
        func: RangeFunc,
    ) -> PimResult<Vec<RangeResult>> {
        let before = self.sys.metrics();

        // ---- Step 1: split into disjoint atomic subranges (CPU sweep) ----
        let (subranges, op_spans) = self.spanned("range_tree/split", |s| {
            let mut cuts = s.scratch.take_cuts();
            let mut delta = s.scratch.take_range_delta();
            let mut cell_to_sub = s.scratch.take_cell_to_sub();
            let split = split_ranges(ranges, &mut cuts, &mut delta, &mut cell_to_sub);
            s.scratch.give_cell_to_sub(cell_to_sub);
            s.scratch.give_range_delta(delta);
            s.scratch.give_cuts(cuts);
            s.sys.metrics_mut().charge_cpu(
                (ranges.len() as u64 * 2) * pim_runtime::ceil_log2(ranges.len() as u64) as u64,
                pim_runtime::ceil_log2(ranges.len() as u64).into(),
            );
            split
        });

        // ---- Step 2: pivoted search over subrange left ends → hints ----
        let mut reqs = self.scratch.take_reqs();
        reqs.extend(subranges.iter().enumerate().map(|(i, s)| SearchRequest {
            op: i as u32,
            key: s.lo,
            top: 0,
        }));
        let search = self.pivoted_search(&reqs);
        self.scratch.give_reqs(reqs);
        let search = search?;

        let starts: Vec<(Handle, Option<u32>)> = (0..subranges.len())
            .map(|i| match search.hints.get(&(i as u32)) {
                Some(Hint::Start(h)) | Some(Hint::SharedLeaf(h)) => (*h, None),
                _ => (self.root(), Some(self.random_module())),
            })
            .collect();

        // ---- Step 3: counting descent ----
        let counts = self.spanned("range_tree/count", |s| {
            s.descend_counts(&subranges, &starts)
        });

        // ---- Step 4: execute ----
        let results = self.spanned("range_tree/execute", |s| match func {
            RangeFunc::Count | RangeFunc::Sum | RangeFunc::Min | RangeFunc::Max => {
                // The counting pass already carries the counts; rerun only
                // when another reduction was requested.
                if matches!(func, RangeFunc::Count) {
                    counts
                        .iter()
                        .map(|&c| RangeResult {
                            count: c,
                            ..RangeResult::empty()
                        })
                        .collect()
                } else {
                    s.descend_aggregate(&subranges, &starts, func)
                }
            }
            RangeFunc::AddInPlace(d) => {
                // One pass per subrange with the multiplicity folded in.
                for (i, sub) in subranges.iter().enumerate() {
                    let (at, module) = starts[i];
                    let target = module.unwrap_or_else(|| at.module());
                    s.sys.send(
                        target,
                        Task::RangeDescend {
                            op: i as u32,
                            at,
                            lo: sub.lo,
                            hi: sub.hi,
                            func: RangeFunc::AddInPlace(
                                d.wrapping_mul(u64::from(sub.multiplicity)),
                            ),
                        },
                    );
                }
                s.sys.run_to_quiescence();
                counts
                    .iter()
                    .map(|&c| RangeResult {
                        count: c,
                        ..RangeResult::empty()
                    })
                    .collect()
            }
            RangeFunc::Read | RangeFunc::FetchAdd(_) => {
                s.grouped_fetch(&subranges, &starts, &counts, func)
            }
        });

        // A silently lost descent or write (no reply to count) shows up
        // only in the machine's loss counters: refuse to report results
        // from a damaged pass, and never journal one.
        if self.damage_since(&before) {
            return Err(PimError::incomplete("batch_range", 1));
        }
        // Commit mutations to the journal (per atomic subrange, with the
        // coverage multiplicity folded in, matching the module-side adds).
        match func {
            RangeFunc::FetchAdd(d) | RangeFunc::AddInPlace(d) => {
                for s in &subranges {
                    self.journal.add_in_range(
                        s.lo,
                        s.hi,
                        d.wrapping_mul(u64::from(s.multiplicity)),
                    );
                }
            }
            _ => {}
        }

        // ---- Map atomic subranges back to the input operations ----
        Ok(ranges
            .iter()
            .enumerate()
            .map(|(op, _)| {
                let (s_lo, s_hi) = op_spans[op];
                let mut r = RangeResult::empty();
                for sub in &results[s_lo..s_hi] {
                    r.count += sub.count;
                    r.sum = r.sum.wrapping_add(sub.sum);
                    r.min = r.min.min(sub.min);
                    r.max = r.max.max(sub.max);
                    r.items.extend_from_slice(&sub.items);
                }
                r
            })
            .collect())
    }

    /// Counting pass: one `RangeDescend(Count)` per subrange.
    fn descend_counts(
        &mut self,
        subranges: &[Subrange],
        starts: &[(Handle, Option<u32>)],
    ) -> Vec<u64> {
        self.descend_aggregate(subranges, starts, RangeFunc::Count)
            .into_iter()
            .map(|r| r.count)
            .collect()
    }

    fn descend_aggregate(
        &mut self,
        subranges: &[Subrange],
        starts: &[(Handle, Option<u32>)],
        func: RangeFunc,
    ) -> Vec<RangeResult> {
        debug_assert!(!func.returns_items());
        for (i, s) in subranges.iter().enumerate() {
            let (at, module) = starts[i];
            let target = module.unwrap_or_else(|| at.module());
            self.sys.send(
                target,
                Task::RangeDescend {
                    op: i as u32,
                    at,
                    lo: s.lo,
                    hi: s.hi,
                    func,
                },
            );
        }
        let replies = self.sys.run_to_quiescence();
        let mut agg = vec![RangeResult::empty(); subranges.len()];
        for r in replies {
            match r {
                Reply::RangeAgg {
                    op,
                    count,
                    sum,
                    min,
                    max,
                } => {
                    let a = &mut agg[op as usize];
                    a.count += count;
                    a.sum = a.sum.wrapping_add(sum);
                    a.min = a.min.min(min);
                    a.max = a.max.max(max);
                }
                // A Faulted reply means the descent hit crash-damaged
                // state; the caller's damage check triggers the retry.
                Reply::Faulted { .. } => {}
                other => unreachable!("unexpected reply in counting descent: {other:?}"),
            }
        }
        agg
    }

    /// Item-returning execution in shared-memory-sized groups.
    fn grouped_fetch(
        &mut self,
        subranges: &[Subrange],
        starts: &[(Handle, Option<u32>)],
        counts: &[u64],
        func: RangeFunc,
    ) -> Vec<RangeResult> {
        let budget =
            (u64::from(self.cfg.p) * u64::from(self.cfg.log_p()) * u64::from(self.cfg.log_p()))
                .max(1);
        let (groups, gcost) = group_by_budget(counts, budget);
        gcost.charge(self.sys.metrics_mut());

        let mut results: Vec<RangeResult> = vec![RangeResult::empty(); subranges.len()];
        for group in groups {
            let group_words: u64 = counts[group.clone()].iter().sum::<u64>() * 3;
            self.sys.shared_mem().alloc(group_words);
            for i in group.clone() {
                if counts[i] == 0 {
                    continue;
                }
                let (at, module) = starts[i];
                let target = module.unwrap_or_else(|| at.module());
                self.sys.send(
                    target,
                    Task::RangeDescend {
                        op: i as u32,
                        at,
                        lo: subranges[i].lo,
                        hi: subranges[i].hi,
                        func: RangeFunc::Read,
                    },
                );
            }
            let replies = self.sys.run_to_quiescence();
            let mut fetched: HashMap<u32, Vec<(Key, Value, Handle)>> = HashMap::new();
            for r in replies {
                match r {
                    Reply::RangeItem {
                        op,
                        node,
                        key,
                        value,
                    } => fetched.entry(op).or_default().push((key, value, node)),
                    Reply::Faulted { .. } => {}
                    other => unreachable!("unexpected reply in grouped fetch: {other:?}"),
                }
            }
            for (op, mut items) in fetched {
                par_sort_by_key(&mut items, |&(k, _, _)| k).charge(self.sys.metrics_mut());
                let s = &subranges[op as usize];
                if let RangeFunc::FetchAdd(d) = func {
                    // Apply the function once per covering operation on
                    // the CPU side; returned values are pre-batch.
                    let add = d.wrapping_mul(u64::from(s.multiplicity));
                    for &(_, old, node) in &items {
                        self.send_write(
                            node,
                            Task::WriteValue {
                                node,
                                value: old.wrapping_add(add),
                            },
                        );
                    }
                }
                let r = &mut results[op as usize];
                r.count = items.len() as u64;
                r.items = items.into_iter().map(|(k, v, _)| (k, v)).collect();
            }
            self.sys.run_to_quiescence();
            self.sys.sample_shared_mem();
            self.sys.shared_mem().free(group_words);
        }
        results
    }
}

/// Cut overlapping ranges into disjoint atomic subranges; returns the
/// subranges (ascending) and, per input op, the half-open span of subrange
/// indices it covers. `cuts`, `delta`, and `cell_to_sub` are
/// caller-provided staging (recycled across batches via
/// [`crate::scratch::Scratch`]); any contents are discarded.
fn split_ranges(
    ranges: &[(Key, Key)],
    cuts: &mut Vec<Key>,
    delta: &mut Vec<i64>,
    cell_to_sub: &mut Vec<usize>,
) -> (Vec<Subrange>, Vec<(usize, usize)>) {
    // Cut points: every lo and every hi+1.
    cuts.clear();
    cuts.reserve(ranges.len() * 2);
    for &(lo, hi) in ranges {
        cuts.push(lo);
        cuts.push(hi.saturating_add(1));
    }
    par_sort(cuts);
    cuts.dedup();

    // Coverage sweep over cut cells.
    delta.clear();
    delta.resize(cuts.len() + 1, 0i64);
    for &(lo, hi) in ranges {
        let a = cuts.partition_point(|&c| c < lo);
        let b = cuts.partition_point(|&c| c < hi.saturating_add(1));
        delta[a] += 1;
        delta[b] -= 1;
    }
    let mut subranges = Vec::new();
    cell_to_sub.clear();
    cell_to_sub.resize(cuts.len(), usize::MAX);
    let mut cover = 0i64;
    for i in 0..cuts.len() {
        cover += delta[i];
        if cover > 0 && i < cuts.len() {
            let hi_excl = if i + 1 < cuts.len() {
                cuts[i + 1]
            } else {
                // The last cut is always some hi+1 with coverage 0 after
                // it, so this branch is unreachable; keep it defensive.
                Key::MAX
            };
            cell_to_sub[i] = subranges.len();
            subranges.push(Subrange {
                lo: cuts[i],
                hi: hi_excl - 1,
                multiplicity: cover as u32,
            });
        }
    }

    // Per op: contiguous span of subranges.
    let spans = ranges
        .iter()
        .map(|&(lo, hi)| {
            let a = cuts.partition_point(|&c| c < lo);
            let b = cuts.partition_point(|&c| c < hi.saturating_add(1));
            // Every cell in [a, b) is covered (by this op at least).
            debug_assert!((a..b).all(|i| cell_to_sub[i] != usize::MAX));
            (cell_to_sub[a], cell_to_sub[b - 1] + 1)
        })
        .collect();
    (subranges, spans)
}

impl PimSkipList {
    /// Single-range convenience with automatic strategy choice (§5.2 notes
    /// "we could apply the algorithm from §5.1 to all large ranges"): a
    /// cheap counting descent sizes the range, then broadcast execution is
    /// used for ranges covering `Ω(P log P)` pairs (Theorem 5.1's regime)
    /// and tree execution for small ones (where broadcasting would waste
    /// `P` messages on mostly-empty modules).
    pub fn range_auto(&mut self, lo: Key, hi: Key, func: RangeFunc) -> RangeResult {
        assert!(lo <= hi, "inverted range [{lo}, {hi}]");
        let threshold = u64::from(self.cfg.p) * u64::from(self.cfg.log_p());
        // Size probe: one tree Count (O(K/P + log) — cheaper than a wrong
        // choice for either regime).
        let count = self.batch_range(&[(lo, hi)], RangeFunc::Count)[0].count;
        if matches!(func, RangeFunc::Count) {
            return RangeResult {
                count,
                ..RangeResult::empty()
            };
        }
        if count >= threshold && self.cfg.h_low > 0 {
            self.range_broadcast(lo, hi, func)
        } else {
            self.batch_range(&[(lo, hi)], func)
                .pop()
                .expect("one result per range")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn split_ranges_t(ranges: &[(Key, Key)]) -> (Vec<Subrange>, Vec<(usize, usize)>) {
        split_ranges(ranges, &mut Vec::new(), &mut Vec::new(), &mut Vec::new())
    }

    #[test]
    fn split_disjoint_ranges_passthrough() {
        let (subs, spans) = split_ranges_t(&[(0, 5), (10, 15)]);
        assert_eq!(subs.len(), 2);
        assert_eq!((subs[0].lo, subs[0].hi, subs[0].multiplicity), (0, 5, 1));
        assert_eq!((subs[1].lo, subs[1].hi, subs[1].multiplicity), (10, 15, 1));
        assert_eq!(spans, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn split_overlapping_ranges() {
        let (subs, spans) = split_ranges_t(&[(0, 10), (5, 15)]);
        let triples: Vec<(Key, Key, u32)> =
            subs.iter().map(|s| (s.lo, s.hi, s.multiplicity)).collect();
        assert_eq!(triples, vec![(0, 4, 1), (5, 10, 2), (11, 15, 1)]);
        assert_eq!(spans, vec![(0, 2), (1, 3)]);
    }

    #[test]
    fn split_nested_ranges() {
        let (subs, spans) = split_ranges_t(&[(0, 100), (40, 60)]);
        let triples: Vec<(Key, Key, u32)> =
            subs.iter().map(|s| (s.lo, s.hi, s.multiplicity)).collect();
        assert_eq!(triples, vec![(0, 39, 1), (40, 60, 2), (61, 100, 1)]);
        assert_eq!(spans, vec![(0, 3), (1, 2)]);
    }

    #[test]
    fn split_identical_ranges() {
        let (subs, spans) = split_ranges_t(&[(3, 9), (3, 9), (3, 9)]);
        assert_eq!(subs.len(), 1);
        assert_eq!(subs[0].multiplicity, 3);
        assert_eq!(spans, vec![(0, 1); 3]);
    }

    #[test]
    fn split_touching_ranges() {
        let (subs, spans) = split_ranges_t(&[(0, 4), (5, 9)]);
        assert_eq!(subs.len(), 2);
        assert_eq!(spans, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn split_single_key_range() {
        let (subs, _) = split_ranges_t(&[(7, 7)]);
        assert_eq!(subs.len(), 1);
        assert_eq!((subs[0].lo, subs[0].hi), (7, 7));
    }
}
