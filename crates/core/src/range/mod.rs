//! Range operations (§5): broadcast and tree-structure execution.

pub mod broadcast;
pub mod tree;

pub use broadcast::RangeResult;
