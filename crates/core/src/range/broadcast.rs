//! Range operations by broadcasting (§5.1).
//!
//! The operation is broadcast to all `P` modules (an `h = 1` relation);
//! each module finds the *local successor* of `LKey` — upper-part search to
//! the rightmost upper leaf `≤ LKey`, one `next_leaf` hop, then a short
//! local-list walk (`O(log P)` whp, Theorem 5.1) — and streams its local
//! pairs in `[LKey, RKey]` through the function. With `K` covered pairs,
//! Lemma 2.1 puts `Θ(K/P)` of them in every module whp: PIM time
//! `O(K/P + log n)`, IO `O(1)` out plus `O(K/P)` returns, `O(1)` rounds.

use pim_primitives::sort::par_sort_by_key;

use crate::config::{Key, Value};
use crate::list::PimSkipList;
use crate::tasks::{RangeFunc, Reply, Task};

/// Result of one range operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeResult {
    /// `(key, value)` pairs in ascending key order (populated by
    /// item-returning functions; for `FetchAdd` the values are the old
    /// ones).
    pub items: Vec<(Key, Value)>,
    /// Number of pairs the function touched.
    pub count: u64,
    /// Sum of touched values (populated by the reductions).
    pub sum: u64,
    /// Minimum touched value (`u64::MAX` when the range was empty).
    pub min: Value,
    /// Maximum touched value (`0` when the range was empty).
    pub max: Value,
}

impl RangeResult {
    /// An empty result with reduction identities.
    pub fn empty() -> Self {
        RangeResult {
            items: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl PimSkipList {
    /// Execute one range operation by broadcast (§5.1). Requires a
    /// distributed lower part (`h_low > 0`).
    pub fn range_broadcast(&mut self, lo: Key, hi: Key, func: RangeFunc) -> RangeResult {
        assert!(
            self.cfg.h_low > 0,
            "broadcast ranges need local leaf lists (h_low > 0)"
        );
        self.sys.broadcast(|_| Task::RangeBroadcast {
            op: 0,
            lo,
            hi,
            func,
        });
        let replies = self.sys.run_to_quiescence();

        let mut out = RangeResult::empty();
        for r in replies {
            match r {
                Reply::RangeItem { key, value, .. } => {
                    out.items.push((key, value));
                }
                Reply::RangeAgg {
                    count,
                    sum,
                    min,
                    max,
                    ..
                } => {
                    out.count += count;
                    out.sum = out.sum.wrapping_add(sum);
                    out.min = out.min.min(min);
                    out.max = out.max.max(max);
                }
                other => unreachable!("unexpected reply in range_broadcast: {other:?}"),
            }
        }
        if func.returns_items() {
            // The paper indexes results inside the structure; we instead
            // sort the returned pairs on the CPU side (documented
            // substitution — same `O(K log K)` work the CPU-side variant
            // of §5.2 step 4 performs).
            let staged = out.items.len() as u64 * 2;
            self.sys.shared_mem().alloc(staged);
            par_sort_by_key(&mut out.items, |&(k, _)| k).charge(self.sys.metrics_mut());
            out.count = out.items.len() as u64;
            self.sys.sample_shared_mem();
            self.sys.shared_mem().free(staged);
        }
        out
    }
}
