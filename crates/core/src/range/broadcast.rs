//! Range operations by broadcasting (§5.1).
//!
//! The operation is broadcast to all `P` modules (an `h = 1` relation);
//! each module finds the *local successor* of `LKey` — upper-part search to
//! the rightmost upper leaf `≤ LKey`, one `next_leaf` hop, then a short
//! local-list walk (`O(log P)` whp, Theorem 5.1) — and streams its local
//! pairs in `[LKey, RKey]` through the function. With `K` covered pairs,
//! Lemma 2.1 puts `Θ(K/P)` of them in every module whp: PIM time
//! `O(K/P + log n)`, IO `O(1)` out plus `O(K/P)` returns, `O(1)` rounds.

use pim_primitives::sort::par_sort_by_key;

use crate::config::{Key, Value};
use crate::error::{PimError, PimResult};
use crate::list::PimSkipList;
use crate::tasks::{RangeFunc, Reply, Task};

/// Result of one range operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeResult {
    /// `(key, value)` pairs in ascending key order (populated by
    /// item-returning functions; for `FetchAdd` the values are the old
    /// ones).
    pub items: Vec<(Key, Value)>,
    /// Number of pairs the function touched.
    pub count: u64,
    /// Sum of touched values (populated by the reductions).
    pub sum: u64,
    /// Minimum touched value (`u64::MAX` when the range was empty).
    pub min: Value,
    /// Maximum touched value (`0` when the range was empty).
    pub max: Value,
}

impl RangeResult {
    /// An empty result with reduction identities.
    pub fn empty() -> Self {
        RangeResult {
            items: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl PimSkipList {
    /// Execute one range operation by broadcast (§5.1). Requires a
    /// distributed lower part (`h_low > 0`).
    pub fn range_broadcast(&mut self, lo: Key, hi: Key, func: RangeFunc) -> RangeResult {
        assert!(
            self.cfg.h_low > 0,
            "broadcast ranges need local leaf lists (h_low > 0)"
        );
        self.try_range_broadcast(lo, hi, func)
            .unwrap_or_else(|e| panic!("range_broadcast: {e}"))
    }

    /// Fault-tolerant broadcast range operation; see
    /// [`PimSkipList::range_broadcast`]. Mutating functions (`FetchAdd`,
    /// `AddInPlace`) are recovered like structural batches: any damaged
    /// attempt restores the machine from the journal before retrying, so a
    /// partial add is never applied twice.
    pub fn try_range_broadcast(
        &mut self,
        lo: Key,
        hi: Key,
        func: RangeFunc,
    ) -> PimResult<RangeResult> {
        if self.cfg.h_low == 0 {
            return Err(PimError::InvalidArgument {
                op: "range_broadcast",
                reason: "broadcast ranges need local leaf lists (h_low > 0)".into(),
            });
        }
        let p = self.cfg.p as usize;
        self.retry_structural("range_broadcast", p, |s| {
            s.range_broadcast_attempt(lo, hi, func)
        })
    }

    /// One fault-observable attempt of [`PimSkipList::range_broadcast`].
    fn range_broadcast_attempt(
        &mut self,
        lo: Key,
        hi: Key,
        func: RangeFunc,
    ) -> PimResult<RangeResult> {
        self.spanned("range_broadcast", |s| {
            s.range_broadcast_attempt_inner(lo, hi, func)
        })
    }

    fn range_broadcast_attempt_inner(
        &mut self,
        lo: Key,
        hi: Key,
        func: RangeFunc,
    ) -> PimResult<RangeResult> {
        let before = self.sys.metrics();
        let replies = self.spanned("range_broadcast/scan", |s| {
            s.sys.broadcast(|_| Task::RangeBroadcast {
                op: 0,
                lo,
                hi,
                func,
            });
            s.sys.run_to_quiescence()
        });

        let mut out = RangeResult::empty();
        let mut agg_replies = 0u32;
        let mut faulted = 0usize;
        for r in replies {
            match r {
                Reply::RangeItem { key, value, .. } => {
                    out.items.push((key, value));
                }
                Reply::RangeAgg {
                    count,
                    sum,
                    min,
                    max,
                    ..
                } => {
                    agg_replies += 1;
                    out.count += count;
                    out.sum = out.sum.wrapping_add(sum);
                    out.min = out.min.min(min);
                    out.max = out.max.max(max);
                }
                Reply::Faulted { .. } => faulted += 1,
                other => return Err(PimError::protocol("range_broadcast", other)),
            }
        }
        // Non-item functions get exactly one aggregate reply per module —
        // a direct completeness count. Item streams have no such invariant;
        // the metrics delta below covers silently lost items instead.
        if faulted > 0 || (!func.returns_items() && agg_replies < self.cfg.p) {
            let missing = (self.cfg.p - agg_replies.min(self.cfg.p)) as usize;
            return Err(PimError::incomplete("range_broadcast", faulted + missing));
        }
        if self.damage_since(&before) {
            return Err(PimError::incomplete("range_broadcast", 1));
        }
        // Commit mutations to the journal only now, on an undamaged pass.
        match func {
            RangeFunc::FetchAdd(d) | RangeFunc::AddInPlace(d) => {
                self.journal.add_in_range(lo, hi, d);
            }
            _ => {}
        }
        if func.returns_items() {
            // The paper indexes results inside the structure; we instead
            // sort the returned pairs on the CPU side (documented
            // substitution — same `O(K log K)` work the CPU-side variant
            // of §5.2 step 4 performs).
            self.spanned("range_broadcast/sort", |s| {
                let staged = out.items.len() as u64 * 2;
                s.sys.shared_mem().alloc(staged);
                par_sort_by_key(&mut out.items, |&(k, _)| k).charge(s.sys.metrics_mut());
                out.count = out.items.len() as u64;
                s.sys.sample_shared_mem();
                s.sys.shared_mem().free(staged);
            });
        }
        Ok(out)
    }
}
