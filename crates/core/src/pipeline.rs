//! Run pipelining: staging the next coalescible run's CPU-side
//! preprocessing while the current run executes its rounds.
//!
//! [`crate::PimSkipList::try_execute`] splits a mixed op stream into
//! maximal coalescible runs and executes them in arrival order. The batch
//! algorithm behind each run starts with CPU-only preprocessing — extract
//! the run's keys or pairs, semisort-dedup them, for point searches sort
//! them — before the first `TaskSend` touches the machine. That prefix
//! depends only on the run's ops, never on the structure's state, so while
//! run `k` is executing its rounds the preprocessing of run `k+1` can run
//! on a side thread ([`pim_runtime::buffers::DoubleBuffer`] +
//! `pim_runtime::pool::run_overlapped`).
//!
//! Determinism: every staged result is a pure function of the run's ops
//! (`dedup_by_key_into`, `sort_unstable` + `dedup` — both sequential, no
//! pool, no RNG), and the consuming batch algorithm charges the *same*
//! [`pim_primitives::CpuCost`] at the *same* span point whether the data
//! was staged or computed inline. Replies, contents, metrics, traces and
//! telemetry are therefore byte-identical to the unpipelined engine — the
//! proptest suite and the CI `pipeline-determinism` byte-diff both enforce
//! it.
//!
//! Consumption safety: each staged field carries a `has_*` flag and the
//! whole stage a run-kind tag. A consumer takes a field at most once
//! (`mem::swap` with its own empty leased buffer, so capacities keep
//! circulating and the steady state stays allocation-free); a retry after
//! an injected fault finds the flag cleared and recomputes inline, which
//! is the exact unpipelined code path.

use crate::config::{Key, Value};
use crate::op::{op_key, op_pair, Op, OpKind};

/// Precomputed CPU-side preprocessing for one coalescible run, produced on
/// the staging thread and consumed by the batch algorithms via the
/// `staged_*` hooks on [`crate::PimSkipList`].
#[derive(Debug, Default)]
pub(crate) struct StagedRun {
    /// Family of the run these buffers were staged for (`None` = empty).
    kind: Option<OpKind>,
    has_keys: bool,
    has_pairs: bool,
    has_uniq_keys: bool,
    has_uniq_pairs: bool,
    has_sorted_keys: bool,
    /// The run's keys in arrival order (Get/Delete/Predecessor/Successor).
    keys: Vec<Key>,
    /// The run's pairs in arrival order (Update/Upsert).
    pairs: Vec<(Key, Value)>,
    /// First-occurrence dedup survivors of `keys` (Get/Delete).
    uniq_keys: Vec<Key>,
    /// First-occurrence dedup survivors of `pairs` (Update/Upsert).
    uniq_pairs: Vec<(Key, Value)>,
    /// Sorted unique keys (Predecessor/Successor point searches).
    sorted_keys: Vec<Key>,
    /// Dedup tag scratch, retained across stages.
    tags: Vec<(u64, u32)>,
}

impl StagedRun {
    /// Clear every flag and buffer (capacities retained).
    pub(crate) fn clear(&mut self) {
        self.kind = None;
        self.has_keys = false;
        self.has_pairs = false;
        self.has_uniq_keys = false;
        self.has_uniq_pairs = false;
        self.has_sorted_keys = false;
        self.keys.clear();
        self.pairs.clear();
        self.uniq_keys.clear();
        self.uniq_pairs.clear();
        self.sorted_keys.clear();
    }

    /// Would staging `kind` precompute anything? Ranges are not staged:
    /// their preprocessing is validation with early-error semantics that
    /// must stay on the main thread.
    pub(crate) fn stageable(kind: OpKind) -> bool {
        !matches!(kind, OpKind::Range)
    }

    /// Stage `run`'s preprocessing into `self` (on the side thread). The
    /// run must be coalescible and non-empty; `run[0]` names the family.
    pub(crate) fn stage(&mut self, run: &[Op]) {
        self.clear();
        let kind = run[0].kind();
        debug_assert!(Self::stageable(kind));
        self.kind = Some(kind);
        match kind {
            OpKind::Get | OpKind::Delete => {
                self.keys.extend(run.iter().map(op_key));
                pim_primitives::semisort::dedup_by_key_into(
                    &self.keys,
                    |&k| k as u64,
                    &mut self.tags,
                    &mut self.uniq_keys,
                );
                self.has_keys = true;
                self.has_uniq_keys = true;
            }
            OpKind::Update | OpKind::Upsert => {
                self.pairs.extend(run.iter().map(op_pair));
                pim_primitives::semisort::dedup_by_key_into(
                    &self.pairs,
                    |&(k, _)| k as u64,
                    &mut self.tags,
                    &mut self.uniq_pairs,
                );
                self.has_pairs = true;
                self.has_uniq_pairs = true;
            }
            OpKind::Predecessor | OpKind::Successor => {
                self.keys.extend(run.iter().map(op_key));
                self.sorted_keys.extend_from_slice(&self.keys);
                // Same bytes as the inline stable sort + dedup: keys are
                // `Copy + Ord`, equal elements indistinguishable.
                self.sorted_keys.sort_unstable();
                self.sorted_keys.dedup();
                self.has_keys = true;
                self.has_sorted_keys = true;
            }
            OpKind::Range => unreachable!("ranges are never staged"),
        }
    }

    fn take_field(avail: &mut bool, field: &mut Vec<Key>, dst: &mut Vec<Key>) -> bool {
        debug_assert!(dst.is_empty(), "staged take needs an empty lease");
        if !*avail {
            return false;
        }
        *avail = false;
        std::mem::swap(field, dst);
        true
    }

    /// Take the staged arrival-order keys for a `kind` run, if staged.
    pub(crate) fn take_keys(&mut self, kind: OpKind, dst: &mut Vec<Key>) -> bool {
        self.kind == Some(kind) && Self::take_field(&mut self.has_keys, &mut self.keys, dst)
    }

    /// Take the staged dedup survivors for a `kind` key run, if staged.
    pub(crate) fn take_uniq_keys(&mut self, kind: OpKind, dst: &mut Vec<Key>) -> bool {
        self.kind == Some(kind)
            && Self::take_field(&mut self.has_uniq_keys, &mut self.uniq_keys, dst)
    }

    /// Take the staged sorted unique keys (point searches), if staged.
    pub(crate) fn take_sorted_keys(&mut self, dst: &mut Vec<Key>) -> bool {
        matches!(self.kind, Some(OpKind::Predecessor | OpKind::Successor))
            && Self::take_field(&mut self.has_sorted_keys, &mut self.sorted_keys, dst)
    }

    /// Take the staged arrival-order pairs for a `kind` run, if staged.
    pub(crate) fn take_pairs(&mut self, kind: OpKind, dst: &mut Vec<(Key, Value)>) -> bool {
        debug_assert!(dst.is_empty(), "staged take needs an empty lease");
        if self.kind != Some(kind) || !self.has_pairs {
            return false;
        }
        self.has_pairs = false;
        std::mem::swap(&mut self.pairs, dst);
        true
    }

    /// Take the staged dedup survivors for a `kind` pair run, if staged.
    pub(crate) fn take_uniq_pairs(&mut self, kind: OpKind, dst: &mut Vec<(Key, Value)>) -> bool {
        debug_assert!(dst.is_empty(), "staged take needs an empty lease");
        if self.kind != Some(kind) || !self.has_uniq_pairs {
            return false;
        }
        self.has_uniq_pairs = false;
        std::mem::swap(&mut self.uniq_pairs, dst);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_get_run_matches_inline_preprocessing() {
        let run = [
            Op::Get { key: 5 },
            Op::Get { key: 3 },
            Op::Get { key: 5 },
            Op::Get { key: 9 },
        ];
        let mut staged = StagedRun::default();
        staged.stage(&run);
        let mut keys = Vec::new();
        assert!(staged.take_keys(OpKind::Get, &mut keys));
        assert_eq!(keys, vec![5, 3, 5, 9]);
        let mut uniq = Vec::new();
        assert!(staged.take_uniq_keys(OpKind::Get, &mut uniq));
        assert_eq!(uniq, vec![5, 3, 9], "first-occurrence order");
        // Second take: consumed.
        assert!(!staged.take_keys(OpKind::Get, &mut Vec::new()));
        // Wrong kind: refused even when flags are set.
        staged.stage(&run);
        assert!(!staged.take_keys(OpKind::Delete, &mut Vec::new()));
    }

    #[test]
    fn staged_upsert_run_dedups_first_wins() {
        let run = [
            Op::Upsert { key: 2, value: 20 },
            Op::Upsert { key: 1, value: 10 },
            Op::Upsert { key: 2, value: 21 },
        ];
        let mut staged = StagedRun::default();
        staged.stage(&run);
        let mut pairs = Vec::new();
        assert!(staged.take_pairs(OpKind::Upsert, &mut pairs));
        assert_eq!(pairs, vec![(2, 20), (1, 10), (2, 21)]);
        let mut uniq = Vec::new();
        assert!(staged.take_uniq_pairs(OpKind::Upsert, &mut uniq));
        assert_eq!(uniq, vec![(2, 20), (1, 10)], "first value wins");
    }

    #[test]
    fn staged_search_run_sorts_and_dedups() {
        let run = [
            Op::Successor { key: 7 },
            Op::Successor { key: 1 },
            Op::Successor { key: 7 },
        ];
        let mut staged = StagedRun::default();
        staged.stage(&run);
        let mut sorted = Vec::new();
        assert!(staged.take_sorted_keys(&mut sorted));
        assert_eq!(sorted, vec![1, 7]);
        // Predecessor runs also feed `take_sorted_keys`.
        staged.stage(&[Op::Predecessor { key: 4 }]);
        let mut sorted = Vec::new();
        assert!(staged.take_sorted_keys(&mut sorted));
        assert_eq!(sorted, vec![4]);
    }

    #[test]
    fn clear_resets_flags_and_ranges_are_unstageable() {
        let mut staged = StagedRun::default();
        staged.stage(&[Op::Get { key: 1 }]);
        staged.clear();
        assert!(!staged.take_keys(OpKind::Get, &mut Vec::new()));
        assert!(!StagedRun::stageable(OpKind::Range));
        assert!(StagedRun::stageable(OpKind::Get));
    }
}
