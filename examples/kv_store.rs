//! A batch-parallel key-value store on PIM hardware — the workload the
//! paper's introduction motivates: an in-memory store whose requests
//! arrive in batches and whose *data movement* is the dominant cost.
//!
//! The store ingests a write-heavy warm-up, then serves alternating
//! read/scan/write epochs, reporting model-cost throughput (messages and
//! PIM work per operation) per epoch.
//!
//! ```text
//! cargo run --release -p pim-examples --bin kv_store
//! ```

use pim_core::prelude::*;
use pim_workloads::{value_for, PointGen};

struct Epoch {
    name: &'static str,
    ops: usize,
    io_per_op: f64,
    pim_per_op: f64,
    rounds: u64,
}

fn main() {
    let p = 32;
    let n = 20_000usize;
    let mut store = PimSkipList::new(Config::new(p, n as u64, 0x6B76));
    let mut gen = PointGen::new(99, 0, n as i64 * 32);
    let mut epochs = Vec::new();

    // --- Warm-up: bulk ingest ---
    let keys = gen.distinct_uniform(n);
    let pairs: Vec<(i64, u64)> = keys.iter().map(|&k| (k, value_for(k))).collect();
    let before = store.metrics();
    for chunk in pairs.chunks(store.config().batch_large()) {
        let outcomes = store.batch_upsert(chunk);
        assert!(outcomes.iter().all(|o| *o == UpsertOutcome::Inserted));
    }
    let d = store.metrics() - before;
    epochs.push(Epoch {
        name: "ingest",
        ops: n,
        io_per_op: d.io_time as f64 / n as f64,
        pim_per_op: d.total_pim_work as f64 / n as f64,
        rounds: d.rounds,
    });

    // --- Epoch 1: point reads (uniform) ---
    let batch = store.config().batch_small();
    let before = store.metrics();
    let mut served = 0;
    for _ in 0..20 {
        let q = gen.from_existing(&keys, batch);
        let hits = store.batch_get(&q).iter().flatten().count();
        assert_eq!(hits, q.len(), "all queried keys are resident");
        served += batch;
    }
    let d = store.metrics() - before;
    epochs.push(Epoch {
        name: "reads",
        ops: served,
        io_per_op: d.io_time as f64 / served as f64,
        pim_per_op: d.total_pim_work as f64 / served as f64,
        rounds: d.rounds,
    });

    // --- Epoch 2: read-modify-write (fetch-add over hot windows) ---
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    let before = store.metrics();
    let mut touched = 0u64;
    for w in 0..8 {
        let start = (w * 977) % (sorted.len() - 512);
        let (lo, hi) = (sorted[start], sorted[start + 511]);
        let r = store.range_broadcast(lo, hi, RangeFunc::FetchAdd(1));
        touched += r.count;
    }
    let d = store.metrics() - before;
    epochs.push(Epoch {
        name: "rmw-scan",
        ops: touched as usize,
        io_per_op: d.io_time as f64 / touched as f64,
        pim_per_op: d.total_pim_work as f64 / touched as f64,
        rounds: d.rounds,
    });

    // --- Epoch 3: churn (delete + insert) ---
    let before = store.metrics();
    let victims = gen.distinct_from_existing(&keys, store.config().batch_large());
    let removed = store.batch_delete(&victims).iter().filter(|&&f| f).count();
    let fresh: Vec<(i64, u64)> = victims.iter().map(|&k| (k + 1, value_for(k + 1))).collect();
    store.batch_upsert(&fresh);
    let churn = removed + fresh.len();
    let d = store.metrics() - before;
    epochs.push(Epoch {
        name: "churn",
        ops: churn,
        io_per_op: d.io_time as f64 / churn as f64,
        pim_per_op: d.total_pim_work as f64 / churn as f64,
        rounds: d.rounds,
    });

    store.validate().expect("store consistent after churn");

    println!("batch-parallel KV store on a {p}-module PIM machine ({n} keys)\n");
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>8}",
        "epoch", "ops", "IO/op", "PIMwork/op", "rounds"
    );
    for e in &epochs {
        println!(
            "{:<10} {:>10} {:>12.3} {:>12.3} {:>8}",
            e.name, e.ops, e.io_per_op, e.pim_per_op, e.rounds
        );
    }
    println!("\nIO/op stays O(polylog P / P) — data movement per op is tiny and");
    println!("independent of n: the PIM promise the paper formalises.");
}
