//! A limit order book on a PIM machine — three PIM-model structures
//! cooperating, all metered in the same cost model:
//!
//! * the **price ladder** is the paper's PIM-balanced skip list
//!   (price → aggregated resting quantity), queried with Successor (best
//!   ask), Predecessor (best bid) and range reads (depth snapshots);
//! * the **event log** is the batch FIFO queue of `pim-algorithms`;
//! * the **order table** (order id → price) is the batch unordered map.
//!
//! Each tick: drain a batch of events from the queue, apply cancels via
//! the map, apply placements to the ladder, then take a depth snapshot —
//! everything in batches, everything PIM-balanced.
//!
//! ```text
//! cargo run --release -p pim-examples --bin order_book
//! ```

use pim_algorithms::{PimHashMap, PimQueue};
use pim_core::prelude::*;
use rand::{Rng as _, SeedableRng};

const PLACE: u64 = 0;
const CANCEL: u64 = 1;

fn encode(kind: u64, order_id: u64, price: u64, qty: u64) -> u64 {
    kind << 62 | order_id << 40 | price << 16 | qty
}

fn decode(ev: u64) -> (u64, u64, u64, u64) {
    (
        ev >> 62,
        (ev >> 40) & 0x3F_FFFF,
        (ev >> 16) & 0xFF_FFFF,
        ev & 0xFFFF,
    )
}

fn main() {
    let p = 16u32;
    let mut ladder = PimSkipList::new(Config::new(p, 1 << 16, 0x0B00));
    let mut events = PimQueue::new(p);
    let mut orders = PimHashMap::new(p, 0x0B01);
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);

    let mid = 50_000u64;
    let mut next_order_id = 1u64;
    let mut live: Vec<(u64, u64, u64)> = Vec::new(); // (id, price, qty)

    println!("limit order book on {p} PIM modules\n");
    println!(
        "{:>5} {:>8} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "tick", "placed", "cancel", "best bid", "best ask", "depth±100", "IO/event"
    );

    for tick in 0..10 {
        // ---- Producers enqueue a batch of events ----
        let mut batch = Vec::new();
        for _ in 0..600 {
            if !live.is_empty() && rng.gen_bool(0.3) {
                let (id, price, qty) = live.swap_remove(rng.gen_range(0..live.len()));
                batch.push(encode(CANCEL, id, price, qty));
            } else {
                let price = mid as i64 + rng.gen_range(-200i64..=200);
                let qty = rng.gen_range(1..=50u64);
                let id = next_order_id;
                next_order_id += 1;
                live.push((id, price as u64, qty));
                batch.push(encode(PLACE, id, price as u64, qty));
            }
        }
        events.batch_enqueue(&batch);

        // ---- The matching engine drains and applies the batch ----
        let m0 = ladder.metrics();
        let drained = events.batch_dequeue(usize::MAX / 2);
        let mut places: Vec<(i64, u64)> = Vec::new(); // price deltas
        let mut cancels: Vec<(i64, u64)> = Vec::new();
        let mut id_updates: Vec<(i64, u64)> = Vec::new();
        let mut id_removals: Vec<i64> = Vec::new();
        for ev in &drained {
            let (kind, id, price, qty) = decode(*ev);
            if kind == PLACE {
                places.push((price as i64, qty));
                id_updates.push((id as i64, price));
            } else {
                cancels.push((price as i64, qty));
                id_removals.push(id as i64);
            }
        }
        // Order table maintenance.
        orders.batch_upsert(&id_updates);
        orders.batch_remove(&id_removals);

        // Aggregate quantity per price level on the CPU, then apply to the
        // ladder: read-modify-write as one get + one upsert batch.
        let mut delta: std::collections::HashMap<i64, i64> = Default::default();
        for &(price, qty) in &places {
            *delta.entry(price).or_default() += qty as i64;
        }
        for &(price, qty) in &cancels {
            *delta.entry(price).or_default() -= qty as i64;
        }
        let prices: Vec<i64> = delta.keys().copied().collect();
        let current = ladder.batch_get(&prices);
        let mut writes = Vec::new();
        let mut removals = Vec::new();
        for (i, &price) in prices.iter().enumerate() {
            let new = current[i].unwrap_or(0) as i64 + delta[&price];
            if new > 0 {
                writes.push((price, new as u64));
            } else if current[i].is_some() {
                removals.push(price);
            }
        }
        ladder.batch_upsert(&writes);
        ladder.batch_delete(&removals);

        // ---- Market data: best bid/ask + a depth snapshot ----
        let best_ask = ladder.batch_successor(&[mid as i64])[0].map(|(k, _)| k);
        let best_bid = ladder.batch_predecessor(&[mid as i64 - 1])[0].map(|(k, _)| k);
        let depth = ladder.range_broadcast(mid as i64 - 100, mid as i64 + 100, RangeFunc::Sum);
        let d = ladder.metrics() - m0;

        println!(
            "{:>5} {:>8} {:>8} {:>10} {:>10} {:>12} {:>10.3}",
            tick,
            places.len(),
            cancels.len(),
            best_bid.unwrap_or(0),
            best_ask.unwrap_or(0),
            depth.sum,
            d.io_time as f64 / drained.len() as f64,
        );
    }

    ladder.validate().expect("ladder consistent");
    println!(
        "\nladder levels: {}, queue empty: {}, orders live: {}",
        ladder.len(),
        events.is_empty(),
        orders.len()
    );
    println!("all batches stayed PIM-balanced: IO-balance {:.2}", {
        let m = ladder.metrics();
        m.pim_balance_io(p)
    });
}
