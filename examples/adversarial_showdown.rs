//! The paper's core claim, live: PIM-balance under adversarial batches.
//!
//! Three structures face three workloads; the table prints each
//! structure's IO-balance ratio (`io_time / (messages/P)` — 1.0 is
//! perfect, P is one-module serialisation):
//!
//! * the **PIM-balanced skip list** (this paper),
//! * **range partitioning** (Choe et al. / Liu et al.) — dies on the
//!   single-range flood,
//! * the same structure with **push-pull search** (warm hot-node cache) —
//!   the flood's shared prefix resolves on the CPU, so the wire goes
//!   nearly silent.
//!
//! ```text
//! cargo run --release -p pim-examples --bin adversarial_showdown
//! ```

use pim_baseline::RangePartitionedList;
use pim_core::prelude::*;
use pim_workloads::{same_successor_flood, single_range_flood, PointGen};

fn main() {
    let p = 32u32;
    let n = 16_000usize;
    let lg = pim_runtime::ceil_log2(u64::from(p)) as usize;
    let batch = p as usize * lg * lg;
    let domain_hi = n as i64 * 16;

    let mut gen = PointGen::new(0xAD5E, 0, domain_hi);
    let keys = gen.distinct_uniform(n);
    let pairs: Vec<(i64, u64)> = keys.iter().map(|&k| (k, 1)).collect();

    let mut ours = PimSkipList::new(Config::new(p, n as u64, 0xF00D));
    ours.load(&pairs);
    let mut rp = RangePartitionedList::new(p, 0, domain_hi, 0xF00D);
    rp.batch_upsert(&pairs);

    let uniform = gen.from_existing(&keys, batch);
    let one_range = single_range_flood(2, 0, domain_hi / p as i64 - 1, batch);

    println!("P = {p}, n = {n}, batch = {batch}\n");
    println!(
        "{:<34} {:>10} {:>12} {:>12}",
        "structure / workload", "IO time", "messages", "IO-balance"
    );

    let report = |name: &str, io: u64, msgs: u64| {
        // A silent wire (warm push-pull) is perfectly balanced by fiat.
        let balance = if msgs == 0 {
            1.0
        } else {
            io as f64 / (msgs as f64 / f64::from(p))
        };
        println!("{name:<34} {io:>10} {msgs:>12} {balance:>12.2}");
    };

    // Get batches.
    for (wname, w) in [("uniform", &uniform), ("one-range flood", &one_range)] {
        let m0 = ours.metrics();
        ours.batch_get(w);
        let d = ours.metrics() - m0;
        report(
            &format!("pim-balanced get / {wname}"),
            d.io_time,
            d.total_messages,
        );

        let m0 = rp.metrics();
        rp.batch_get(w);
        let d = rp.metrics() - m0;
        report(
            &format!("range-partitioned get / {wname}"),
            d.io_time,
            d.total_messages,
        );
    }

    println!();

    // Successor batches: the same-successor adversary — a sparse index
    // with huge gaps, and a full batch of distinct keys all inside one
    // gap, so every search shares one successor node.
    let mut sparse = PimSkipList::new(Config::new(p, 1 << 14, 0xBEEF));
    sparse.batch_upsert(
        &(0..64i64)
            .map(|i| (i * 10_000_000, i as u64))
            .collect::<Vec<_>>(),
    );
    let flood = same_successor_flood(3, 10_000_001, 19_999_999, batch);
    let m0 = sparse.metrics();
    sparse.batch_successor(&flood);
    let d = sparse.metrics() - m0;
    report(
        "pivot successor / same-succ flood",
        d.io_time,
        d.total_messages,
    );

    let mut pp = PimSkipList::new(Config::new(p, 1 << 14, 0xBEEF).with_push_pull(true));
    pp.batch_upsert(
        &(0..64i64)
            .map(|i| (i * 10_000_000, i as u64))
            .collect::<Vec<_>>(),
    );
    for _ in 0..8 {
        pp.batch_successor(&flood); // warm the hot-node cache
    }
    let m0 = pp.metrics();
    let rounds0 = m0.rounds;
    pp.batch_successor(&flood);
    let d = pp.metrics() - m0;
    report(
        "push-pull successor / same-succ flood",
        d.io_time,
        d.total_messages,
    );
    println!(
        "(push-pull warm batch: {} rounds, {} messages)",
        pp.metrics().rounds - rounds0,
        d.total_messages
    );

    println!("\nIO-balance ≈ 1-4: load spread across modules (PIM-balanced).");
    println!("IO-balance ≈ P ({p}): the whole batch serialised on one module.");
}
