//! Time-series analytics on PIM: an ordered index over timestamped
//! samples, queried with windowed aggregations — the range-operation
//! workload of §5.
//!
//! Demonstrates both execution strategies and their crossover:
//! * **broadcast** (§5.1) — best for wide windows (`K = Ω(P log P)`);
//! * **tree descent** (§5.2) — best for batches of narrow windows.
//!
//! ```text
//! cargo run --release -p pim-examples --bin time_series
//! ```

use pim_core::prelude::*;

fn main() {
    let p = 32;
    // One sample every 30 "seconds" over a day-ish horizon.
    let horizon: i64 = 86_400 * 2;
    let period: i64 = 30;
    let n = (horizon / period) as usize;

    let mut index = PimSkipList::new(Config::new(p, n as u64, 0x7153));
    let samples: Vec<(i64, u64)> = (0..n as i64)
        .map(|i| {
            let t = i * period;
            // A daily sinusoid plus drift, quantised to integers.
            let v = 1000.0
                + 400.0 * ((t as f64 / 86_400.0) * std::f64::consts::TAU).sin()
                + (t as f64 * 0.001);
            (t, v as u64)
        })
        .collect();
    index.load(&samples);
    println!("indexed {} samples on {p} PIM modules\n", index.len());

    // --- Wide window: daily average via broadcast ---
    let m0 = index.metrics();
    let day = index.range_broadcast(0, 86_399, RangeFunc::Sum);
    let d = index.metrics() - m0;
    println!(
        "day-1 average: {:.1} over {} samples (broadcast: {} rounds, IO {})",
        day.sum as f64 / day.count as f64,
        day.count,
        d.rounds,
        d.io_time
    );

    // --- Batch of narrow windows: per-hour maxima candidates via tree ---
    let hours: Vec<(i64, i64)> = (0..48).map(|h| (h * 3600, h * 3600 + 3599)).collect();
    let m0 = index.metrics();
    let per_hour = index.batch_range(&hours, RangeFunc::Sum);
    let d = index.metrics() - m0;
    let busiest = per_hour
        .iter()
        .enumerate()
        .max_by_key(|(_, r)| r.sum.checked_div(r.count).unwrap_or(0))
        .map(|(h, _)| h)
        .unwrap();
    println!(
        "busiest hour by mean value: hour {} (tree descent over 48 windows: {} rounds, IO {})",
        busiest, d.rounds, d.io_time
    );

    // --- Windowed correction: bump a maintenance window by a constant ---
    let window = (3_600i64, 7_199i64);
    index.batch_range(&[window], RangeFunc::AddInPlace(50));
    let check = index.range_broadcast(window.0, window.1, RangeFunc::Sum);
    println!(
        "applied +50 correction to {} samples in [{}, {}]",
        check.count, window.0, window.1
    );

    // --- Point lookups: nearest sample at / after arbitrary instants ---
    let instants = vec![12_345i64, 50_000, 99_999];
    let nearest = index.batch_successor(&instants);
    for (i, t) in instants.iter().enumerate() {
        println!(
            "first sample at/after t={t}: {:?}",
            nearest[i].map(|(ts, _)| ts)
        );
    }

    index.validate().expect("index consistent");
    println!("\nstructure validated ✓");
}
