//! Chaos recovery: run an adversarial workload while a seeded fault plan
//! crashes modules, drops messages and stalls cores — and watch the
//! recovery layer keep the structure correct, with the repair bill on the
//! meters.
//!
//! ```text
//! cargo run --release -p pim-examples --bin chaos_recovery
//! ```

use std::collections::BTreeMap;

use pim_core::prelude::*;
use pim_core::{FaultKind, FaultPlan};

/// One run of the demo workload; returns the final contents.
fn run(list: &mut PimSkipList) -> Vec<(i64, u64)> {
    let base: Vec<(i64, u64)> = (0..2_000).map(|i| (i * 5, i as u64)).collect();
    list.bulk_load(&base);
    // A contiguous insert wave and a contiguous delete wave — the
    // splice-heavy adversary from §4.4.
    let wave: Vec<(i64, u64)> = (0..500).map(|i| (i * 5 + 2, 7)).collect();
    list.batch_upsert(&wave);
    list.batch_delete(&(0..400).map(|i| i * 5).collect::<Vec<_>>());
    list.collect_items()
}

fn main() {
    // ---- Reference run: no faults ----
    let mut clean = PimSkipList::new(Config::new(8, 1 << 12, 0xBEEF));
    let clean_items = run(&mut clean);
    let cm = clean.metrics();
    println!(
        "fault-free : {} keys, {} rounds, io {}",
        clean.len(),
        cm.rounds,
        cm.io_time
    );

    // ---- Chaos run: same workload, same seed, plus a fault plan ----
    // 30 random faults over the first 400 rounds (drops, stalls,
    // slowdowns, crashes) and one *guaranteed* crash of module 3.
    let plan = FaultPlan::random(0xD15A57E5, 8, 400, 30).at(60, 3, FaultKind::Crash);
    println!("plan       : {} scheduled fault events", plan.len());

    // A retry budget above the event count makes exhaustion impossible
    // (each scheduled fault round can damage at most one attempt).
    let mut chaotic = PimSkipList::new(Config::new(8, 1 << 12, 0xBEEF).with_max_retries(40));
    chaotic.set_fault_plan(plan);
    let chaotic_items = run(&mut chaotic);

    // ---- The recovery contract ----
    assert_eq!(
        chaotic_items, clean_items,
        "contents must match the fault-free run"
    );
    chaotic
        .validate()
        .expect("structural invariants hold after recovery");
    let oracle: BTreeMap<i64, u64> = clean_items.iter().copied().collect();
    println!(
        "chaos run  : {} keys, all equal to the fault-free oracle ({} spot-checked)",
        chaotic.len(),
        oracle.len()
    );

    // ---- The repair bill ----
    let m = chaotic.metrics();
    println!("\n-- fault & recovery meters --");
    println!("faults injected       : {}", m.faults_injected);
    println!("messages dropped      : {}", m.messages_dropped);
    println!("module crashes        : {}", m.module_crashes);
    println!("stalled module-rounds : {}", m.stalled_module_rounds);
    println!("batch slots re-issued : {}", m.retries_issued);
    println!(
        "recovery rounds       : {} (of {} total)",
        m.recovery_rounds, m.rounds
    );
    println!(
        "round overhead        : {:.1}% vs fault-free",
        (m.rounds as f64 / cm.rounds as f64 - 1.0) * 100.0
    );

    // ---- Determinism: replay the exact same chaos ----
    let mut replay = PimSkipList::new(Config::new(8, 1 << 12, 0xBEEF).with_max_retries(40));
    replay.set_fault_plan(FaultPlan::random(0xD15A57E5, 8, 400, 30).at(60, 3, FaultKind::Crash));
    let replay_items = run(&mut replay);
    assert_eq!(replay_items, chaotic_items);
    assert_eq!(replay.metrics(), m, "same plan, same seed, same execution");
    println!("\nreplay     : identical metrics and results — chaos is debuggable");
}
