//! Quickstart: build a PIM machine, run every batch operation once, and
//! read the model's cost meters.
//!
//! ```text
//! cargo run --release -p pim-examples --bin quickstart
//! ```

use pim_core::prelude::*;

fn main() {
    // A machine with P = 16 PIM modules, sized for ~10k keys. The seed
    // feeds the structure's secret coins (hash placement, tower heights).
    let mut list = PimSkipList::new(Config::new(16, 10_000, 0xC0FFEE));

    // Batched Upsert: the canonical write path. Batches are plain slices;
    // the paper's recommended minimum sizes are Config::batch_small() for
    // Get/Update and Config::batch_large() for everything else.
    let pairs: Vec<(i64, u64)> = (0..1_000).map(|i| (i * 7, (i * 10) as u64)).collect();
    list.batch_upsert(&pairs);
    println!("loaded {} keys on {} modules", list.len(), list.p());

    // Batched Get: hash-shortcut lookups, O(1) PIM work per key.
    let values = list.batch_get(&[0, 7, 13, 700]);
    println!("get [0, 7, 13, 700] -> {values:?}");

    // Batched Successor: ordered search with the pivot load-balancing.
    let succ = list.batch_successor(&[1, 8, 6_994]);
    println!(
        "successors of [1, 8, 6994] -> {:?}",
        succ.iter().map(|s| s.map(|(k, _)| k)).collect::<Vec<_>>()
    );

    // A range operation: sum all values in [0, 70], executed on the PIM
    // side by broadcast.
    let r = list.range_broadcast(0, 70, RangeFunc::Sum);
    println!("sum of values in [0, 70]: {} ({} pairs)", r.sum, r.count);

    // Batched Delete.
    let deleted = list.batch_delete(&[0, 1, 7]);
    println!("delete [0, 1, 7] -> {deleted:?} (len now {})", list.len());

    // Every operation was metered in the PIM model's five cost metrics.
    let m = list.metrics();
    println!("\n-- accumulated model costs --");
    println!("bulk-synchronous rounds : {}", m.rounds);
    println!("IO time (Σ max-h)       : {}", m.io_time);
    println!("PIM time (Σ max work)   : {}", m.pim_time);
    println!("CPU work / depth        : {} / {}", m.cpu_work, m.cpu_depth);
    println!("shared-memory peak      : {} words", m.shared_mem_peak);
    println!(
        "PIM-balance (io, work)  : {:.2}, {:.2}  (1.0 = perfect)",
        m.pim_balance_io(list.p()),
        m.pim_balance_work(list.p())
    );

    // The structure can self-check all Fig. 2 invariants.
    list.validate().expect("structure is consistent");
    println!("\nall structural invariants hold ✓");
}
